"""Tests for repro.config (paper Table 1)."""

import pytest

from repro.config import NoCConfig, SystemConfig, default_config, table1_rows


class TestNoCConfig:
    def test_table1_defaults(self):
        cfg = NoCConfig()
        assert (cfg.mesh_width, cfg.mesh_height) == (4, 4)
        assert cfg.router_pipeline_stages == 5
        assert cfg.vcs_per_port == 4
        assert cfg.buffers_per_vc == 4
        assert cfg.packet_length_flits == 5
        assert cfg.flit_length_bytes == 16

    def test_derived_fields(self):
        cfg = NoCConfig()
        assert cfg.node_count == 16
        assert cfg.flit_width_bits == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mesh_width": 0},
            {"vcs_per_port": 0},
            {"buffers_per_vc": 0},
            {"packet_length_flits": 0},
            {"router_pipeline_stages": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NoCConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NoCConfig().mesh_width = 8  # type: ignore[misc]


class TestSystemConfig:
    def test_table1_defaults(self):
        cfg = default_config()
        assert cfg.core_count == 16
        assert cfg.core_frequency_ghz == 2.0
        assert cfg.l1_cache_kb == 64
        assert cfg.l2_cache_mb == 4
        assert cfg.cacheline_bytes == 64
        assert cfg.memory_gb == 1
        assert cfg.coherency_protocol == "MESI"
        assert cfg.master_node == 0

    def test_l2_bank_size(self):
        # 4 MB shared over 16 tiles = 256 KB per bank
        assert default_config().l2_bank_kb == 256

    def test_core_count_must_tile_mesh(self):
        with pytest.raises(ValueError):
            SystemConfig(core_count=8)

    def test_master_must_be_valid(self):
        with pytest.raises(ValueError):
            SystemConfig(master_node=16)

    def test_frequency_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(core_frequency_ghz=0)

    def test_larger_mesh(self):
        cfg = SystemConfig(core_count=64, noc=NoCConfig(mesh_width=8, mesh_height=8))
        assert cfg.core_count == cfg.noc.node_count


class TestTable1Rows:
    def test_has_six_rows_of_four(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert all(len(r) == 4 for r in rows)

    def test_matches_paper_values(self):
        flat = " | ".join(" ".join(r) for r in table1_rows())
        for expected in (
            "16, 2GHz", "4 x 4 2D Mesh", "classic 5-stage", "4 VCs per port",
            "4 buffers per VC", "5 flits", "16 bytes", "MESI protocol",
        ):
            assert expected in flat
