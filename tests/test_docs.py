"""Documentation consistency: the docs must track the code."""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_md():
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme_md():
    return (ROOT / "README.md").read_text(encoding="utf-8")


class TestDesignDoc:
    def test_mentions_every_source_module(self, design_md):
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            name = path.name
            if name in ("__init__.py", "__main__.py"):
                continue
            assert name in design_md, f"DESIGN.md does not mention {name}"

    def test_confirms_paper_text_checked(self, design_md):
        assert "Paper-text check" in design_md

    def test_maps_every_figure(self, design_md):
        for figure in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
                       "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                       "Fig. 12", "Table 1"):
            assert figure in design_md, f"DESIGN.md does not map {figure}"


class TestExperimentsDoc:
    def test_mentions_every_bench(self, experiments_md):
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in experiments_md, (
                f"EXPERIMENTS.md does not reference {path.name}"
            )

    def test_reports_paper_numbers(self, experiments_md):
        for number in ("3.6", "1.9", "25.5", "69.1", "24.5", "71.9",
                       "358.3", "347.79", "343.81", "55.4"):
            assert number in experiments_md, (
                f"EXPERIMENTS.md lost the paper value {number}"
            )


class TestReadme:
    def test_mentions_every_example(self, readme_md):
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme_md, f"README.md does not list {path.name}"

    def test_cites_the_paper(self, readme_md):
        assert "DAC 2014" in readme_md
        assert "10.1145/2593069.2593165" in readme_md

    def test_install_and_run_commands(self, readme_md):
        for command in ("pip install -e .", "pytest tests/",
                        "pytest benchmarks/ --benchmark-only", "python -m repro"):
            assert command in readme_md

    def test_docs_directory_exists(self):
        assert (ROOT / "docs" / "architecture.md").exists()
        assert (ROOT / "docs" / "algorithms.md").exists()
        assert (ROOT / "docs" / "api.md").exists()
