"""Tests for the RC thermal grid (HotSpot substitute)."""

import numpy as np
import pytest

from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.power.chip_power import ChipPowerModel
from repro.thermal.floorplan import (
    power_density_summary,
    sprint_tile_powers,
    uniform_tile_powers,
)
from repro.thermal.grid import AMBIENT_K, ThermalGrid, ThermalParams


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(4, 4, 4)


@pytest.fixture(scope="module")
def chip():
    return ChipPowerModel(16)


class TestSteadyState:
    def test_zero_power_is_ambient(self, grid):
        temps = grid.steady_state([0.0] * 16)
        assert np.allclose(temps, AMBIENT_K)

    def test_uniform_power_center_hotspot(self, grid):
        """Figure 12a: uniform power peaks at the die centre."""
        temps = grid.steady_state(uniform_tile_powers(160.0))
        ny, nx = temps.shape
        center = temps[ny // 2, nx // 2]
        corner = temps[0, 0]
        assert center > corner
        assert np.unravel_index(temps.argmax(), temps.shape)[0] in (ny // 2 - 1, ny // 2)

    def test_symmetry_under_uniform_power(self, grid):
        temps = grid.steady_state(uniform_tile_powers(100.0))
        assert np.allclose(temps, np.flipud(temps), atol=1e-6)
        assert np.allclose(temps, np.fliplr(temps), atol=1e-6)

    def test_linearity(self, grid):
        one = grid.steady_state(uniform_tile_powers(50.0)) - AMBIENT_K
        two = grid.steady_state(uniform_tile_powers(100.0)) - AMBIENT_K
        assert np.allclose(two, 2 * one, rtol=1e-6)

    def test_hot_tile_is_hottest(self, grid):
        powers = [0.0] * 16
        powers[5] = 20.0
        tiles = grid.tile_temperatures(powers)
        assert tiles.argmax() == 5

    def test_wrong_tile_count_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.steady_state([1.0] * 15)


class TestFigure12Calibration:
    def test_full_sprint_peak(self, grid, chip):
        topo = SprintTopology.for_level(4, 4, 16)
        peak = grid.peak_temperature(sprint_tile_powers(topo, chip))
        assert peak == pytest.approx(358.3, abs=1.5)

    def test_cluster_peak(self, grid, chip):
        topo = SprintTopology.for_level(4, 4, 4)
        peak = grid.peak_temperature(sprint_tile_powers(topo, chip))
        assert peak == pytest.approx(347.79, abs=1.5)

    def test_floorplanned_peak(self, grid, chip):
        topo = SprintTopology.for_level(4, 4, 4)
        fp = thermal_aware_floorplan(4, 4)
        peak = grid.peak_temperature(sprint_tile_powers(topo, chip, fp))
        assert peak == pytest.approx(343.81, abs=1.5)

    def test_paper_ordering(self, grid, chip):
        """full > clustered 4-core > floorplanned 4-core."""
        topo16 = SprintTopology.for_level(4, 4, 16)
        topo4 = SprintTopology.for_level(4, 4, 4)
        fp = thermal_aware_floorplan(4, 4)
        full = grid.peak_temperature(sprint_tile_powers(topo16, chip))
        cluster = grid.peak_temperature(sprint_tile_powers(topo4, chip))
        planned = grid.peak_temperature(sprint_tile_powers(topo4, chip, fp))
        assert full > cluster > planned


class TestTransient:
    def test_converges_to_steady_state(self):
        params = ThermalParams(cell_heat_capacity_j_per_k=0.001)
        grid = ThermalGrid(4, 4, 2, params)
        powers = uniform_tile_powers(80.0)
        steady = grid.steady_state(powers)
        transient = grid.transient(powers, duration_s=2.0, dt_s=2e-4)
        assert np.allclose(transient, steady, atol=0.5)

    def test_short_transient_cooler_than_steady(self):
        grid = ThermalGrid(4, 4, 2)
        powers = uniform_tile_powers(80.0)
        early = grid.transient(powers, duration_s=0.002, dt_s=1e-4)
        steady = grid.steady_state(powers)
        assert early.max() < steady.max()

    def test_invalid_duration(self):
        grid = ThermalGrid(2, 2, 2)
        with pytest.raises(ValueError):
            grid.transient([1.0] * 4, duration_s=-1)


class TestHelpers:
    def test_uniform_tile_powers(self):
        tiles = uniform_tile_powers(32.0, 16)
        assert len(tiles) == 16
        assert sum(tiles) == pytest.approx(32.0)

    def test_power_density_summary(self, chip):
        topo = SprintTopology.for_level(4, 4, 4)
        summary = power_density_summary(sprint_tile_powers(topo, chip))
        assert summary["max_tile_w"] > summary["min_tile_w"]
        assert summary["total_w"] == pytest.approx(summary["mean_tile_w"] * 16)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            ThermalGrid(0, 4)
        with pytest.raises(ValueError):
            ThermalGrid(4, 4, 0)
