"""Tests for repro.util: rng streams, statistics, tables, directions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.directions import ALL_PORTS, MESH_DIRECTIONS, Direction
from repro.util.geometry import Coord
from repro.util.rng import stream
from repro.util.stats import (
    RunningStats,
    geometric_mean,
    mean,
    percent_change,
    percent_saving,
)
from repro.util.tables import format_series, format_table, render_heatmap


class TestRngStreams:
    def test_same_seed_same_stream(self):
        assert stream(1, "a").random() == stream(1, "a").random()

    def test_different_names_differ(self):
        assert stream(1, "a").random() != stream(1, "b").random()

    def test_different_seeds_differ(self):
        assert stream(1, "a").random() != stream(2, "a").random()

    def test_stable_across_calls(self):
        r = stream(42, "traffic")
        first = [r.random() for _ in range(5)]
        r2 = stream(42, "traffic")
        assert [r2.random() for _ in range(5)] == first


class TestRunningStats:
    def test_mean(self):
        s = RunningStats()
        s.extend([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3

    def test_min_max(self):
        s = RunningStats()
        s.extend([3.0, -1.0, 2.0])
        assert s.minimum == -1.0
        assert s.maximum == 3.0

    def test_variance_matches_definition(self):
        data = [1.0, 4.0, 9.0, 16.0]
        s = RunningStats()
        s.extend(data)
        mu = sum(data) / len(data)
        var = sum((x - mu) ** 2 for x in data) / (len(data) - 1)
        assert s.variance == pytest.approx(var)
        assert s.stdev == pytest.approx(math.sqrt(var))

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    def test_small_sample_variance_zero(self):
        s = RunningStats()
        s.add(5.0)
        assert s.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_streaming_matches_batch(self, data):
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(sum(data) / len(data), abs=1e-6)


class TestScalarStats:
    def test_mean(self):
        assert mean([2.0, 4.0]) == 3.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_percent_change(self):
        assert percent_change(10.0, 5.0) == pytest.approx(-50.0)
        assert percent_saving(10.0, 5.0) == pytest.approx(50.0)

    def test_percent_change_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)


class TestTables:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]
        assert "y" in lines[3]

    def test_title(self):
        out = format_table(["h"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series(self):
        out = format_series({"y": [1.0, 2.0]}, "x", [0.1, 0.2])
        assert "0.100" in out and "2.000" in out

    def test_heatmap(self):
        out = render_heatmap([[1.0, 2.0], [3.0, 4.0]])
        assert len(out.splitlines()) == 2


class TestDirections:
    def test_offsets_sum_to_zero(self):
        total = Coord(0, 0)
        for d in MESH_DIRECTIONS:
            total = total + d.offset
        assert total == Coord(0, 0)

    def test_north_is_up(self):
        # origin is the top-left corner, so north decreases y
        assert Direction.NORTH.offset == Coord(0, -1)
        assert Direction.SOUTH.offset == Coord(0, 1)

    def test_opposites(self):
        for d in MESH_DIRECTIONS:
            assert d.opposite.opposite is d
            assert d.opposite.offset == Coord(-d.offset.x, -d.offset.y)

    def test_local_is_self_opposite(self):
        assert Direction.LOCAL.opposite is Direction.LOCAL

    def test_all_ports(self):
        assert len(ALL_PORTS) == 5
        assert ALL_PORTS[0] is Direction.LOCAL
