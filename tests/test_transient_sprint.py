"""Tests for the coupled grid + PCM transient sprint simulation."""

import pytest

from repro.core.topological import SprintTopology
from repro.power.chip_power import ChipPowerModel
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.pcm import DEFAULT_PCM
from repro.thermal.transient_sprint import SprintTransient


@pytest.fixture(scope="module")
def chip():
    return ChipPowerModel(16)


@pytest.fixture(scope="module")
def full_trace(chip):
    powers = sprint_tile_powers(SprintTopology.for_level(4, 4, 16), chip)
    return SprintTransient().run(powers, duration_s=2.0, dt_s=1e-3)


@pytest.fixture(scope="module")
def level4_trace(chip):
    powers = sprint_tile_powers(SprintTopology.for_level(4, 4, 4), chip)
    return SprintTransient().run(powers, duration_s=2.0, dt_s=1e-3)


class TestFullSprintTrace:
    def test_visits_all_phases(self, full_trace):
        phases = {s.phase for s in full_trace.samples}
        assert {"heating", "melting", "post-melt", "limit"} <= phases

    def test_phase_order(self, full_trace):
        boundaries = full_trace.phase_boundaries()
        assert (
            boundaries["heating"]
            < boundaries["melting"]
            < boundaries["post-melt"]
            < boundaries["limit"]
        )

    def test_limit_near_one_second(self, full_trace):
        """The coupled model agrees with the lumped Figure 1 model: a full
        sprint is forced down after ~1 s."""
        assert full_trace.reached_limit_at_s == pytest.approx(1.0, abs=0.15)

    def test_melt_plateau_constant_temperature(self, full_trace):
        melt_temps = [
            s.pcm_temperature_k for s in full_trace.samples if s.phase == "melting"
        ]
        assert melt_temps
        assert max(melt_temps) - min(melt_temps) < 0.5
        assert melt_temps[0] == pytest.approx(DEFAULT_PCM.melt_temperature_k, abs=0.5)

    def test_melted_fraction_monotone(self, full_trace):
        fractions = [s.melted_fraction for s in full_trace.samples]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_die_peak_above_pcm_node(self, full_trace):
        for s in full_trace.samples:
            assert s.peak_die_temperature_k >= s.pcm_temperature_k - 1e-9


class TestSprintLevelContrast:
    def test_level4_never_hits_limit(self, level4_trace):
        """The paper's point: a level-4 sprint heats so slowly the 2 s
        window never reaches the forced fallback."""
        assert level4_trace.reached_limit_at_s is None

    def test_level4_melts_later(self, full_trace, level4_trace):
        full_melt = full_trace.phase_boundaries()["melting"]
        lvl4_melt = level4_trace.phase_boundaries().get("melting")
        assert lvl4_melt is None or lvl4_melt > 2 * full_melt

    def test_level4_cooler_peak(self, full_trace, level4_trace):
        assert level4_trace.peak_die_temperature_k < full_trace.peak_die_temperature_k


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            SprintTransient().run([1.0] * 16, duration_s=0.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            SprintTransient().run([1.0] * 16, duration_s=1.0, dt_s=-1e-3)

    def test_sub_tdp_power_never_melts(self):
        trace = SprintTransient().run([1.0] * 16, duration_s=0.5, dt_s=1e-3)
        assert all(s.melted_fraction == 0.0 for s in trace.samples)
        assert trace.reached_limit_at_s is None
