"""Tests for LLC architectures and the request/reply LLC simulation."""

import pytest

from repro.cmp.llc import LlcAccessStream, LlcArchitecture, home_bank
from repro.config import NoCConfig
from repro.core.bypass import plan_bypass
from repro.core.topological import SprintTopology
from repro.noc.llc_sim import run_llc_simulation

CFG = NoCConfig()


class TestHomeBank:
    def test_interleaving(self):
        assert [home_bank(line, 16) for line in range(18)] == list(range(16)) + [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            home_bank(0, 0)
        with pytest.raises(ValueError):
            home_bank(-1, 16)


class TestAccessStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            LlcAccessStream([], LlcArchitecture.TILED, 0.1)
        with pytest.raises(ValueError):
            LlcAccessStream([0], LlcArchitecture.TILED, 1.5)

    def test_rate_honored(self):
        stream = LlcAccessStream(list(range(4)), LlcArchitecture.TILED, 0.2, seed=1)
        count = sum(len(stream.requests_for_cycle(c)) for c in range(4000))
        assert count / (4000 * 4) == pytest.approx(0.2, rel=0.07)

    def test_centralized_targets_master(self):
        stream = LlcAccessStream([0, 1, 4, 5], LlcArchitecture.CENTRALIZED, 0.9, seed=1)
        for cycle in range(100):
            for request in stream.requests_for_cycle(cycle):
                assert request.bank == 0

    def test_private_miss_stream_targets_master(self):
        stream = LlcAccessStream([5], LlcArchitecture.PRIVATE, 0.9, seed=1, master_node=0)
        for cycle in range(50):
            for request in stream.requests_for_cycle(cycle):
                assert request.bank == 0

    def test_tiled_covers_all_banks(self):
        stream = LlcAccessStream([0, 1], LlcArchitecture.TILED, 1.0, seed=1)
        banks = set()
        for cycle in range(500):
            banks.update(r.bank for r in stream.requests_for_cycle(cycle))
        assert banks == set(range(16))

    def test_dark_access_probability(self):
        stream = LlcAccessStream([0, 1, 4, 5], LlcArchitecture.TILED, 0.1)
        assert stream.dark_access_probability(frozenset({0, 1, 4, 5})) == 0.75
        central = LlcAccessStream([0], LlcArchitecture.CENTRALIZED, 0.1)
        assert central.dark_access_probability(frozenset({0})) == 0.0


class TestLlcSimulation:
    @pytest.fixture(scope="class")
    def region(self):
        return SprintTopology.for_level(4, 4, 4)

    def test_tiled_bypass_completes(self, region):
        stream = LlcAccessStream(list(region.active_nodes), LlcArchitecture.TILED,
                                 0.05, seed=1)
        result = run_llc_simulation(region, stream, CFG, "cdor",
                                    bypass=plan_bypass(region),
                                    warmup_cycles=300, measure_cycles=800)
        assert not result.saturated
        assert result.requests_completed > 0
        assert result.dark_bank_accesses > 0
        assert result.dark_access_fraction == pytest.approx(0.75, abs=0.1)
        assert result.bypass_flits > 0

    def test_tiled_without_bypass_raises(self, region):
        stream = LlcAccessStream(list(region.active_nodes), LlcArchitecture.TILED,
                                 0.05, seed=1)
        with pytest.raises(RuntimeError, match="bypass"):
            run_llc_simulation(region, stream, CFG, "cdor",
                               warmup_cycles=100, measure_cycles=200)

    def test_centralized_needs_no_bypass(self, region):
        stream = LlcAccessStream(list(region.active_nodes),
                                 LlcArchitecture.CENTRALIZED, 0.05, seed=1)
        result = run_llc_simulation(region, stream, CFG, "cdor",
                                    warmup_cycles=300, measure_cycles=800)
        assert not result.saturated
        assert result.dark_bank_accesses == 0
        # the master's own accesses are local
        assert result.local_accesses > 0

    def test_full_network_reaches_dark_banks_directly(self, region):
        full = SprintTopology.for_level(4, 4, 16)
        stream = LlcAccessStream(list(region.active_nodes), LlcArchitecture.TILED,
                                 0.05, seed=1)
        result = run_llc_simulation(full, stream, CFG, "xy",
                                    warmup_cycles=300, measure_cycles=800)
        assert not result.saturated
        assert result.dark_bank_accesses == 0  # nothing is dark
        assert len(result.activity.routers) == 16

    def test_round_trip_includes_reply(self, region):
        """Round trips must exceed twice the one-way zero-load latency of
        a request (request there + service + 5-flit reply back)."""
        stream = LlcAccessStream(list(region.active_nodes),
                                 LlcArchitecture.CENTRALIZED, 0.02, seed=2)
        result = run_llc_simulation(region, stream, CFG, "cdor",
                                    warmup_cycles=300, measure_cycles=800)
        assert result.avg_round_trip > 15

    def test_gated_vs_full_power_contrast(self, region):
        """The Section 3.4 trade-off: bypass keeps only the region powered
        while the no-bypass fallback powers the whole mesh."""
        from repro.power.activity import network_power

        stream_a = LlcAccessStream(list(region.active_nodes), LlcArchitecture.TILED,
                                   0.05, seed=1)
        gated = run_llc_simulation(region, stream_a, CFG, "cdor",
                                   bypass=plan_bypass(region),
                                   warmup_cycles=300, measure_cycles=800)
        stream_b = LlcAccessStream(list(region.active_nodes), LlcArchitecture.TILED,
                                   0.05, seed=1)
        full_topo = SprintTopology.for_level(4, 4, 16)
        full = run_llc_simulation(full_topo, stream_b, CFG, "xy",
                                  warmup_cycles=300, measure_cycles=800)
        gated_power = network_power(gated, region, CFG)
        full_power = network_power(full, full_topo, CFG)
        assert gated_power.total < 0.5 * full_power.total

    def test_saturation_flag(self, region):
        stream = LlcAccessStream(list(region.active_nodes),
                                 LlcArchitecture.CENTRALIZED, 0.9, seed=1)
        result = run_llc_simulation(region, stream, CFG, "cdor",
                                    warmup_cycles=200, measure_cycles=600,
                                    drain_cycles=400)
        assert result.saturated
