"""Tests for the run ledger, cross-run diffing, and the regress gate."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import SweepRunner
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.telemetry import Ledger, RunRecord, compare_runs
from repro.telemetry.compare import (
    MetricPolicy,
    render_html,
    render_json,
    render_terminal,
)

CFG = NoCConfig()


def small_spec(level=4, rate=0.1, seed=0) -> SimulationSpec:
    topo = SprintTopology.for_level(4, 4, level)
    return SimulationSpec(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG,
        routing="cdor" if level < 16 else "xy",
        warmup_cycles=100, measure_cycles=300, drain_cycles=600,
    )


def make_record(ledger, points=None, headline=None, **kwargs):
    return ledger.record(
        "sweep",
        points=points if points is not None else {
            "k1": {"avg_latency": 20.0, "throughput": 0.10},
            "k2": {"avg_latency": 30.0, "throughput": 0.20},
        },
        headline=headline if headline is not None else {"avg_latency": 25.0},
        **kwargs,
    )


class TestLedger:
    def test_record_query_round_trip(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        rec = make_record(ledger, label="nightly", backend="reference",
                          spec_keys=("k1", "k2"), wall_s=1.5)
        assert rec is not None
        (loaded,) = ledger.query()
        assert loaded == rec
        assert loaded.label == "nightly"
        assert loaded.points["k1"]["avg_latency"] == 20.0

    def test_run_ids_are_distinct_and_addressable(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        a = make_record(ledger, ts=1.0)
        b = make_record(ledger, ts=2.0)  # same body, new timestamp
        assert a.run_id != b.run_id
        assert ledger.get(a.run_id) == a
        assert ledger.get(a.run_id[:8]) == a

    def test_baseline_resolution(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        tagged = make_record(ledger, label="nightly", ts=1.0)
        newest = make_record(ledger, ts=2.0)
        assert ledger.baseline() == newest
        assert ledger.baseline("latest") == newest
        assert ledger.baseline("nightly") == tagged
        assert ledger.baseline(tagged.run_id[:6]) == tagged
        assert ledger.baseline("nope") is None

    def test_env_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        ledger = Ledger(directory=tmp_path)
        assert make_record(ledger) is None
        assert not ledger.path.exists()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        rec = make_record(ledger)
        with open(ledger.path, "ab") as fh:
            fh.write(b'{"run_id": "deadbeef", "ts": 2.0, "ki')  # torn mid-append
        assert ledger.query() == [rec]
        assert ledger.latest() == rec

    def test_foreign_lines_are_skipped(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        ledger.directory.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text('not json\n{"no_run_id": true}\n')
        rec = make_record(ledger)
        assert ledger.query() == [rec]

    def test_unwritable_directory_is_best_effort(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        ledger = Ledger(directory=blocker / "sub")  # mkdir will fail
        assert make_record(ledger) is None  # swallowed, not raised

    def test_concurrent_writers_lose_no_lines(self, tmp_path):
        """Two processes appending via O_APPEND interleave whole lines."""
        script = (
            "import sys; from repro.telemetry import Ledger\n"
            "ledger = Ledger(directory=sys.argv[1])\n"
            "for i in range(40):\n"
            "    ledger.record('sweep', label=sys.argv[2],\n"
            "                  points={'k': {'avg_latency': float(i)}})\n"
        )
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(p for p in sys.path if p))
        procs = [
            subprocess.Popen([sys.executable, "-c", script,
                              str(tmp_path), label], env=env)
            for label in ("alpha", "beta")
        ]
        for proc in procs:
            assert proc.wait() == 0
        records = Ledger(directory=tmp_path).query()
        assert len(records) == 80
        assert sum(r.label == "alpha" for r in records) == 40
        assert sum(r.label == "beta" for r in records) == 40
        # every line parsed cleanly: ids unique, none torn
        assert len({r.run_id for r in records}) == 80

    def test_sweep_runner_records(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        runner = SweepRunner(ledger=ledger, ledger_label="unit")
        report = runner.run([small_spec(rate=0.05)])
        rec = report.run_record
        assert rec is not None
        assert rec.kind == "sweep"
        assert rec.label == "unit"
        assert rec.backend == "reference"
        assert len(rec.points) == 1
        assert ledger.latest() == rec


class TestCompare:
    def _pair(self, tmp_path, skew=None):
        ledger = Ledger(directory=tmp_path)
        base = make_record(ledger, ts=1.0)
        points = {k: dict(v) for k, v in base.points.items()}
        if skew:
            skew(points)
        cand = make_record(ledger, points=points, ts=2.0)
        return base, cand

    def test_identical_runs_do_not_regress(self, tmp_path):
        base, cand = self._pair(tmp_path)
        comparison = compare_runs(base, cand)
        assert not comparison.regressed
        assert comparison.regressions == []
        assert all(d.status == "ok" for d in comparison.deltas)

    def test_latency_increase_regresses(self, tmp_path):
        def skew(points):
            points["k1"]["avg_latency"] *= 1.25

        base, cand = self._pair(tmp_path, skew)
        comparison = compare_runs(base, cand)
        assert comparison.regressed
        (delta,) = comparison.regressions
        assert delta.point == "k1" and delta.metric == "avg_latency"
        assert delta.rel == pytest.approx(0.25)

    def test_latency_decrease_improves(self, tmp_path):
        def skew(points):
            points["k1"]["avg_latency"] *= 0.5

        base, cand = self._pair(tmp_path, skew)
        comparison = compare_runs(base, cand)
        assert not comparison.regressed
        (delta,) = comparison.improvements
        assert delta.metric == "avg_latency"

    def test_throughput_drop_regresses(self, tmp_path):
        def skew(points):
            points["k2"]["throughput"] *= 0.5  # higher-is-better metric

        base, cand = self._pair(tmp_path, skew)
        assert compare_runs(base, cand).regressed

    def test_min_abs_guard_suppresses_tiny_deltas(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        base = make_record(ledger, points={"k": {"avg_latency": 0.1}})
        cand = make_record(ledger, points={"k": {"avg_latency": 0.2}})
        # +100% relative but only +0.1 cycles: under the 0.5-cycle min_abs
        assert not compare_runs(base, cand).regressed

    def test_removed_point_is_a_regression(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        base = make_record(ledger)
        cand = make_record(ledger, points={"k1": base.points["k1"]})
        comparison = compare_runs(base, cand)
        assert comparison.removed == ["k2"]
        assert comparison.regressed

    def test_rel_threshold_override(self, tmp_path):
        def skew(points):
            points["k1"]["avg_latency"] *= 1.05  # +5%: under default 10%

        base, cand = self._pair(tmp_path, skew)
        assert not compare_runs(base, cand).regressed
        assert compare_runs(base, cand, rel_threshold=0.02).regressed

    def test_custom_policy(self, tmp_path):
        base, cand = self._pair(
            tmp_path, lambda pts: pts["k1"].update(avg_latency=21.0))
        strict = {"avg_latency": MetricPolicy("lower", 0.01, 0.0)}
        assert compare_runs(base, cand, policies=strict).regressed

    def test_renderers(self, tmp_path):
        def skew(points):
            points["k1"]["avg_latency"] *= 1.25

        base, cand = self._pair(tmp_path, skew)
        comparison = compare_runs(base, cand)
        terminal = render_terminal(comparison)
        assert "REGRESSED" in terminal
        assert "avg_latency" in terminal
        payload = json.loads(render_json(comparison))
        assert payload["regressed"] is True
        assert payload["baseline"]["run_id"] == base.run_id
        page = render_html(comparison)
        assert page.startswith("<!doctype html>")
        assert "avg_latency" in page


class TestCliObservatory:
    def _sweep(self, ledger_dir, label=None, seed="0"):
        argv = ["sweep", "--levels", "2", "--rates", "0.05",
                "--warmup", "100", "--measure", "300", "--drain", "400",
                "--seed", seed, "--ledger-dir", str(ledger_dir)]
        if label:
            argv += ["--ledger-label", label]
        return main(argv)

    def test_sweep_records_and_prints_run_id(self, tmp_path, capsys):
        assert self._sweep(tmp_path, label="nightly") == 0
        out = capsys.readouterr().out
        rec = Ledger(directory=tmp_path).latest()
        assert rec is not None and rec.label == "nightly"
        assert f"run recorded: {rec.run_id}" in out

    def test_compare_identical_runs(self, tmp_path, capsys):
        assert self._sweep(tmp_path, label="nightly") == 0
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["compare", "nightly", "latest",
                     "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "OK: no regressions" in out
        assert "avg_latency" in out

    def test_compare_json_and_html(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        page = tmp_path / "cmp.html"
        assert main(["compare", "latest", "latest", "--json",
                     "--html", str(page), "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[:out.rindex("}") + 1])
        assert payload["regressed"] is False
        assert page.read_text().startswith("<!doctype html>")

    def test_compare_unknown_ref(self, tmp_path, capsys):
        assert main(["compare", "nope", "latest",
                     "--ledger-dir", str(tmp_path)]) == 2
        assert "no ledger run matches" in capsys.readouterr().out

    def test_regress_clean_exits_zero(self, tmp_path, capsys):
        assert self._sweep(tmp_path, label="base") == 0
        assert self._sweep(tmp_path) == 0
        assert main(["regress", "--baseline", "base",
                     "--ledger-dir", str(tmp_path)]) == 0

    def test_regress_selftest_exits_four(self, tmp_path, capsys, monkeypatch):
        assert self._sweep(tmp_path, label="base") == 0
        assert self._sweep(tmp_path) == 0
        monkeypatch.setenv("REPRO_REGRESS_SELFTEST", "1")
        assert main(["regress", "--baseline", "base",
                     "--ledger-dir", str(tmp_path)]) == 4
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "avg_latency" in out

    def test_regress_detects_real_metric_shift(self, tmp_path):
        ledger = Ledger(directory=tmp_path)
        make_record(ledger, label="base")
        make_record(ledger, points={
            "k1": {"avg_latency": 26.0, "throughput": 0.10},
            "k2": {"avg_latency": 30.0, "throughput": 0.20},
        })
        assert main(["regress", "--baseline", "base",
                     "--ledger-dir", str(tmp_path)]) == 4

    def test_cache_stats(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "--levels", "2", "--rates", "0.05",
                     "--warmup", "100", "--measure", "300", "--drain", "400",
                     "--cache-dir", str(cache_dir),
                     "--ledger-dir", str(tmp_path / "ledger")]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "disk_entries" in out
        assert "hit_rate" in out

    def test_report_missing_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert main(["report", str(trace),
                     "--metrics", str(tmp_path / "missing.prom")]) == 2
        assert "no such metrics file" in capsys.readouterr().out
