"""Tests for LBDR (the 12-bit general scheme CDOR specializes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdor import CdorRouter, RoutingError
from repro.core.lbdr import (
    BITS_PER_SWITCH,
    LbdrRouter,
    bit_cost_comparison,
    derive_lbdr_bits,
)
from repro.core.topological import SprintTopology
from repro.util.directions import Direction


class TestBitDerivation:
    def test_bit_count_is_twelve(self):
        assert BITS_PER_SWITCH == 12
        assert bit_cost_comparison() == {"lbdr_bits": 12, "cdor_bits": 2}

    def test_connectivity_matches_topology(self):
        topo = SprintTopology.for_level(4, 4, 4)
        bits = derive_lbdr_bits(topo, 0)
        assert bits.connectivity[Direction.EAST]
        assert bits.connectivity[Direction.SOUTH]
        assert not bits.connectivity[Direction.WEST]

    def test_xy_turns_always_enabled(self):
        topo = SprintTopology.for_level(4, 4, 8)
        for node in topo.active_nodes:
            bits = derive_lbdr_bits(topo, node)
            for leave in (Direction.EAST, Direction.WEST):
                for turn in (Direction.NORTH, Direction.SOUTH):
                    assert bits.routing[(leave, turn)]

    def test_detour_turns_track_dark_x_ports(self):
        """In the 8-core region, node 9's east port is dark, so its
        north/south exits may turn east (the paper's NE-turn site)."""
        topo = SprintTopology.for_level(4, 4, 8)
        bits9 = derive_lbdr_bits(topo, 9)
        assert bits9.routing[(Direction.NORTH, Direction.EAST)]
        # node 5 has a live east port: no NE detour bit needed there
        bits5 = derive_lbdr_bits(topo, 5)
        assert not bits5.routing[(Direction.NORTH, Direction.EAST)]

    def test_full_mesh_reduces_to_pure_xy(self):
        """With every link present, all Y->X bits are off: plain XY."""
        topo = SprintTopology.for_level(4, 4, 16)
        for node in range(16):
            bits = derive_lbdr_bits(topo, node)
            for leave in (Direction.NORTH, Direction.SOUTH):
                for turn in (Direction.EAST, Direction.WEST):
                    if bits.connectivity[turn]:
                        assert not bits.routing[(leave, turn)]


class TestLbdrRouting:
    def test_equivalent_to_cdor_on_all_regions(self):
        """CDOR is the 2-bit specialization: on every Algorithm-1 region
        both routers walk identical paths for every pair."""
        for level in range(1, 17):
            topo = SprintTopology.for_level(4, 4, level)
            lbdr = LbdrRouter(topo)
            cdor = CdorRouter(topo)
            for src in topo.active_nodes:
                for dst in topo.active_nodes:
                    assert lbdr.walk(src, dst) == cdor.walk(src, dst), (
                        f"level {level}: {src}->{dst}"
                    )

    def test_paper_example_path(self):
        topo = SprintTopology.for_level(4, 4, 8)
        assert LbdrRouter(topo).walk(9, 2) == [9, 5, 6, 2]

    def test_dark_destination_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(RoutingError):
            LbdrRouter(topo).next_port(0, 15)

    def test_dark_source_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(RoutingError):
            LbdrRouter(topo).walk(15, 0)

    def test_local_delivery(self):
        topo = SprintTopology.for_level(4, 4, 4)
        assert LbdrRouter(topo).next_port(5, 5) is Direction.LOCAL

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(2, 5), height=st.integers(2, 5), data=st.data())
    def test_property_cdor_equivalence(self, width, height, data):
        master = data.draw(st.integers(0, width * height - 1))
        level = data.draw(st.integers(1, width * height))
        topo = SprintTopology.for_level(width, height, level, master)
        lbdr = LbdrRouter(topo)
        cdor = CdorRouter(topo)
        for src in topo.active_nodes:
            for dst in topo.active_nodes:
                assert lbdr.walk(src, dst) == cdor.walk(src, dst)


class TestLbdrDeadlockFreedom:
    def test_all_levels_acyclic(self):
        """Since LBDR == CDOR on these regions, its channel dependency
        graph is the same; still, verify directly through LBDR walks."""
        import networkx as nx

        for level in range(2, 17):
            topo = SprintTopology.for_level(4, 4, level)
            router = LbdrRouter(topo)
            graph = nx.DiGraph()
            for src in topo.active_nodes:
                for dst in topo.active_nodes:
                    if src == dst:
                        continue
                    path = router.walk(src, dst)
                    channels = list(zip(path, path[1:]))
                    for held, wanted in zip(channels, channels[1:]):
                        graph.add_edge(held, wanted)
            assert nx.is_directed_acyclic_graph(graph), f"level {level}"
