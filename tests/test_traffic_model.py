"""Tests for workload -> NoC traffic derivation."""

import pytest

from repro.cmp.traffic_model import traffic_for_workload
from repro.cmp.workloads import get_profile
from repro.core.topological import SprintTopology


class TestTrafficForWorkload:
    def test_endpoints_default_to_region(self):
        topo = SprintTopology.for_level(4, 4, 4)
        gen = traffic_for_workload(get_profile("dedup"), topo)
        assert set(gen.endpoints) == set(topo.active_nodes)
        assert gen.injection_rate == get_profile("dedup").injection_rate

    def test_explicit_endpoints(self):
        topo = SprintTopology.for_level(4, 4, 16)
        gen = traffic_for_workload(get_profile("dedup"), topo, endpoints=[0, 5, 10, 15])
        assert gen.endpoints == [0, 5, 10, 15]

    def test_endpoint_must_be_powered(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(ValueError):
            traffic_for_workload(get_profile("dedup"), topo, endpoints=[0, 15])

    def test_single_node_generates_nothing(self):
        topo = SprintTopology.for_level(4, 4, 1)
        gen = traffic_for_workload(get_profile("freqmine"), topo)
        assert gen.injection_rate == 0.0
        assert all(not gen.packets_for_cycle(c, False) for c in range(50))

    def test_pattern_fallback_off_square(self):
        """A transpose-pattern workload on a non-square endpoint count
        falls back to uniform instead of crashing."""
        from dataclasses import replace

        profile = replace(get_profile("dedup"), traffic_pattern="transpose")
        topo = SprintTopology.for_level(4, 4, 8)
        gen = traffic_for_workload(profile, topo)
        assert gen.pattern == "uniform"

    def test_pattern_kept_on_square(self):
        from dataclasses import replace

        profile = replace(get_profile("dedup"), traffic_pattern="transpose")
        topo = SprintTopology.for_level(4, 4, 16)
        gen = traffic_for_workload(profile, topo)
        assert gen.pattern == "transpose"

    def test_neighbor_pattern_respected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        gen = traffic_for_workload(get_profile("fluidanimate"), topo)
        assert gen.pattern == "neighbor"

    def test_seed_forwarded(self):
        topo = SprintTopology.for_level(4, 4, 4)
        a = traffic_for_workload(get_profile("dedup"), topo, seed=3)
        b = traffic_for_workload(get_profile("dedup"), topo, seed=3)
        pk_a = [(p.source, p.destination) for c in range(100) for p in a.packets_for_cycle(c, False)]
        pk_b = [(p.source, p.destination) for c in range(100) for p in b.packets_for_cycle(c, False)]
        assert pk_a == pk_b
