"""Tests for the link energy model."""

import pytest

from repro.config import NoCConfig
from repro.core.floorplanning import identity_floorplan, thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.power.link_power import TILE_PITCH_MM, LinkPowerModel, link_lengths_mm

CFG = NoCConfig()


class TestLinkModel:
    def test_energy_proportional_to_length(self):
        model = LinkPowerModel(CFG)
        assert model.traversal_energy(2.0) == pytest.approx(2 * model.traversal_energy(1.0))

    def test_leakage_proportional_to_length(self):
        model = LinkPowerModel(CFG)
        assert model.leakage_power(3.0) == pytest.approx(3 * model.leakage_power(1.0))

    def test_voltage_scaling(self):
        ref = LinkPowerModel(CFG, vdd=1.0)
        low = LinkPowerModel(CFG, vdd=0.75)
        assert low.traversal_energy() == pytest.approx(ref.traversal_energy() * 0.75**2)
        assert low.leakage_power() < ref.leakage_power()

    def test_power_window(self):
        model = LinkPowerModel(CFG)
        b = model.power(traversals=1000, cycles=1000)
        assert b.dynamic > 0 and b.leakage > 0

    def test_invalid_inputs(self):
        model = LinkPowerModel(CFG)
        with pytest.raises(ValueError):
            model.traversal_energy(0.0)
        with pytest.raises(ValueError):
            model.leakage_power(-1.0)
        with pytest.raises(ValueError):
            model.power(10, 0)

    def test_wider_flits_cost_more(self):
        narrow = LinkPowerModel(NoCConfig(flit_length_bytes=8))
        wide = LinkPowerModel(NoCConfig(flit_length_bytes=32))
        assert wide.traversal_energy() > narrow.traversal_energy()


class TestLinkLengths:
    def test_identity_all_unit(self):
        topo = SprintTopology.for_level(4, 4, 16)
        lengths = link_lengths_mm(topo)
        assert len(lengths) == 24
        assert all(length == TILE_PITCH_MM for length in lengths.values())

    def test_region_link_count(self):
        topo = SprintTopology.for_level(4, 4, 4)
        assert len(link_lengths_mm(topo)) == 4

    def test_floorplan_stretches(self):
        topo = SprintTopology.for_level(4, 4, 16)
        fp = thermal_aware_floorplan(4, 4)
        lengths = link_lengths_mm(topo, fp)
        assert sum(lengths.values()) > 24 * TILE_PITCH_MM

    def test_identity_floorplan_equivalent_to_none(self):
        topo = SprintTopology.for_level(4, 4, 8)
        assert link_lengths_mm(topo) == link_lengths_mm(topo, identity_floorplan(4, 4))
