"""Cross-module integration tests: the whole stack against the paper's
headline claims, at reduced simulation windows for speed."""

import pytest

from repro.cmp.workloads import all_profiles
from repro.core.system import NoCSprintingSystem
from repro.noc.sim import zero_load_latency
from repro.core.topological import SprintTopology
from repro.config import NoCConfig


@pytest.fixture(scope="module")
def system():
    return NoCSprintingSystem()


class TestFig9Fig10Aggregates:
    @pytest.fixture(scope="class")
    def network_rows(self, system):
        rows = []
        for profile in all_profiles():
            level = system.scheme_level(profile, "noc_sprinting")
            if level < 2:
                continue
            noc = system.evaluate(profile, "noc_sprinting", simulate_network=True,
                                  warmup_cycles=200, measure_cycles=700).network
            full = system.evaluate(profile, "full_sprinting", simulate_network=True,
                                   warmup_cycles=200, measure_cycles=700).network
            rows.append((profile.name, level, noc, full))
        return rows

    def test_latency_reduction_scale(self, network_rows):
        """Figure 9: ~24.5 % average network latency reduction."""
        reductions = [1 - noc.avg_latency / full.avg_latency
                      for _, _, noc, full in network_rows]
        mean = sum(reductions) / len(reductions)
        assert 0.15 < mean < 0.40

    def test_power_reduction_scale(self, network_rows):
        """Figure 10: ~71.9 % average network power reduction."""
        reductions = [1 - noc.total_power_w / full.total_power_w
                      for _, _, noc, full in network_rows]
        mean = sum(reductions) / len(reductions)
        assert 0.55 < mean < 0.85

    def test_full_level_benchmarks_identical(self, network_rows):
        for name, level, noc, full in network_rows:
            if level == 16:
                assert noc.avg_latency == pytest.approx(full.avg_latency)

    def test_no_run_saturates_at_parsec_loads(self, network_rows):
        """The paper: PARSEC rates (<0.3) never saturate the network."""
        for name, _, noc, full in network_rows:
            assert not noc.sim.saturated, name
            assert not full.sim.saturated, name


class TestSimVsAnalyticConsistency:
    def test_zero_load_model_tracks_sim(self, system):
        """The analytic latency the perf model uses must track the cycle
        simulator at light load for every sprint level."""
        cfg = NoCConfig()
        from repro.noc.sim import run_simulation
        from repro.noc.traffic import TrafficGenerator

        for level in (2, 4, 8, 16):
            topo = SprintTopology.for_level(4, 4, level)
            traffic = TrafficGenerator(list(topo.active_nodes), 0.02,
                                       cfg.packet_length_flits, seed=1)
            routing = "cdor" if level < 16 else "xy"
            res = run_simulation(topo, traffic, cfg, routing=routing,
                                 warmup_cycles=300, measure_cycles=1500)
            analytic = zero_load_latency(topo, cfg, routing)
            assert res.avg_latency == pytest.approx(analytic, rel=0.15), level


class TestEndToEndStory:
    def test_dedup_walkthrough(self, system):
        """The paper's running example: dedup sprints at level 4, beats
        full sprint on every axis."""
        noc = system.evaluate("dedup", "noc_sprinting",
                              simulate_network=True, thermal=True)
        full = system.evaluate("dedup", "full_sprinting",
                               simulate_network=True, thermal=True)
        assert noc.speedup > full.speedup
        assert noc.core_power_w < full.core_power_w
        assert noc.network.avg_latency < full.network.avg_latency
        assert noc.network.total_power_w < full.network.total_power_w
        assert noc.peak_temperature_k < full.peak_temperature_k
        assert noc.sprint_duration_s > 1.0

    def test_scalable_workload_equivalence(self, system):
        """For blackscholes the optimum IS full sprint: the schemes agree."""
        noc = system.evaluate("blackscholes", "noc_sprinting")
        full = system.evaluate("blackscholes", "full_sprinting")
        assert noc.level == full.level == 16
        assert noc.speedup == pytest.approx(full.speedup)
        assert noc.core_power_w == pytest.approx(full.core_power_w)

    def test_controller_consistent_with_system(self, system):
        from repro.core.sprinting import SprintController

        controller = SprintController()
        for profile in all_profiles():
            plan = controller.plan(profile)
            assert plan.level == system.scheme_level(profile, "noc_sprinting")
