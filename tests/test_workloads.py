"""Tests for the PARSEC 2.1 profile library (Figures 4, 7 calibration)."""

import pytest

from repro.cmp.perf_model import profile_workload
from repro.cmp.workloads import (
    FLAT_BENCHMARKS,
    PARSEC_PROFILES,
    PEAKING_BENCHMARKS,
    SCALABLE_BENCHMARKS,
    all_profiles,
    get_profile,
)

PARSEC_2_1 = {
    "blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
    "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
    "vips", "x264",
}


class TestLibrary:
    def test_all_thirteen_benchmarks(self):
        assert set(PARSEC_PROFILES) == PARSEC_2_1

    def test_get_profile(self):
        assert get_profile("dedup").name == "dedup"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_profile("splash2x.barnes")

    def test_all_profiles_sorted_stable(self):
        names = [p.name for p in all_profiles()]
        assert names == sorted(names)
        assert len(names) == 13

    def test_shape_classes_partition(self):
        classes = set(SCALABLE_BENCHMARKS) | set(FLAT_BENCHMARKS) | set(PEAKING_BENCHMARKS)
        assert classes == PARSEC_2_1


class TestFigure4Shapes:
    def test_scalable_monotone(self):
        """blackscholes/bodytrack keep speeding up to 16 cores."""
        for name in SCALABLE_BENCHMARKS:
            times = [get_profile(name).scaling[n] for n in (1, 2, 4, 8, 16)]
            assert times == sorted(times, reverse=True)

    def test_flat_benchmark_flat(self):
        """freqmine is 'almost identical at different configurations'."""
        profile = get_profile("freqmine")
        assert max(profile.scaling.values()) / min(profile.scaling.values()) < 1.15

    def test_peaking_benchmarks_degrade(self):
        """vips/swaptions-class workloads peak then suffer a delay penalty:
        16-core execution is slower than their optimum -- for the worst,
        slower than one core."""
        for name in PEAKING_BENCHMARKS:
            profile = get_profile(name)
            opt = profile.optimal_level()
            assert 2 <= opt <= 8, name
            assert profile.scaling[16] > profile.scaling[opt], name
        assert get_profile("vips").scaling[16] > 1.0
        assert get_profile("swaptions").scaling[16] > 1.0

    def test_injection_rates_below_paper_bound(self):
        """'the average network injection rate never exceeds 0.3 flits/cycle'."""
        assert all(p.injection_rate <= 0.3 for p in all_profiles())


class TestFigure7Calibration:
    def test_optimal_levels(self):
        expected = {
            "blackscholes": 16, "bodytrack": 16,
            "facesim": 4, "ferret": 4, "fluidanimate": 4,
            "dedup": 4, "vips": 4, "swaptions": 4,
            "streamcluster": 2, "canneal": 2, "x264": 2, "raytrace": 2,
            "freqmine": 1,
        }
        got = {p.name: p.optimal_level() for p in all_profiles()}
        assert got == expected

    def test_paper_mean_speedups(self):
        """Figure 7 headline: NoC-sprinting 3.6x, full-sprinting 1.9x."""
        decisions = [profile_workload(p) for p in all_profiles()]
        noc = sum(d.speedup_vs_nominal for d in decisions) / len(decisions)
        full = sum(d.speedup_full_sprint for d in decisions) / len(decisions)
        assert noc == pytest.approx(3.6, abs=0.25)
        assert full == pytest.approx(1.9, abs=0.25)

    def test_noc_never_loses_to_full(self):
        """By construction of the optimal level, NoC-sprinting is at least
        as fast as full-sprinting on every benchmark."""
        for p in all_profiles():
            d = profile_workload(p)
            assert d.speedup_vs_nominal >= d.speedup_full_sprint - 1e-9

    def test_dedup_optimal_level_is_four(self):
        """Section 4.4 names dedup's optimal sprint level: 4."""
        assert get_profile("dedup").optimal_level() == 4
