"""Tests for packets and flits."""

import pytest

from repro.noc.flit import Packet, make_flits


class TestPacket:
    def test_latency_requires_ejection(self):
        p = Packet(pid=0, source=0, destination=1, length=5, created_at=10)
        with pytest.raises(ValueError):
            p.latency
        p.ejected_at = 42
        assert p.latency == 32

    def test_defaults(self):
        p = Packet(pid=0, source=0, destination=1, length=5, created_at=0)
        assert not p.measured
        assert p.hops == 0


class TestFlits:
    def test_make_flits(self):
        p = Packet(pid=3, source=0, destination=2, length=5, created_at=0)
        flits = make_flits(p)
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(f.packet is p for f in flits)
        assert [f.index for f in flits] == list(range(5))

    def test_single_flit_packet(self):
        p = Packet(pid=0, source=0, destination=1, length=1, created_at=0)
        (flit,) = make_flits(p)
        assert flit.is_head and flit.is_tail

    def test_destination_delegates(self):
        p = Packet(pid=0, source=0, destination=9, length=2, created_at=0)
        assert make_flits(p)[1].destination == 9
