"""Tests for the McPAT-substitute chip power model (Figures 3 and 8)."""

import pytest

from repro.power.chip_power import ChipPowerModel, ChipPowerParams


class TestNominalBreakdown:
    @pytest.mark.parametrize("cores,paper_share", [(4, 18), (8, 26), (16, 35), (32, 42)])
    def test_fig3_noc_shares(self, cores, paper_share):
        """Figure 3: NoC share of chip power in nominal operation."""
        report = ChipPowerModel(cores).nominal_breakdown()
        assert 100 * report.share("noc") == pytest.approx(paper_share, abs=3.0)

    def test_core_share_shrinks_with_dark_silicon(self):
        shares = [
            ChipPowerModel(n).nominal_breakdown().share("cores") for n in (4, 8, 16, 32)
        ]
        assert shares == sorted(shares, reverse=True)

    def test_total_is_component_sum(self):
        r = ChipPowerModel(16).nominal_breakdown()
        assert r.total == pytest.approx(
            r.cores + r.l2 + r.memory_controllers + r.noc + r.others
        )


class TestCorePower:
    def test_policy_ordering(self):
        m = ChipPowerModel(16)
        gated = m.core_power(4, "gated")
        idle = m.core_power(4, "idle")
        off = m.core_power(4, "off")
        assert off < gated < idle
        assert idle < m.core_power(16)

    def test_bounds_checked(self):
        m = ChipPowerModel(16)
        with pytest.raises(ValueError):
            m.core_power(17)
        with pytest.raises(ValueError):
            m.core_power(-1)
        with pytest.raises(ValueError):
            m.core_power(4, "hibernate")

    def test_fig8_savings(self):
        """Figure 8's headline numbers: naive fine-grained saves ~25.5 %,
        NoC-sprinting ~69.1 % core power vs full-sprinting, averaged over
        the PARSEC optimal levels."""
        from repro.cmp import all_profiles, profile_workload

        m = ChipPowerModel(16)
        levels = [profile_workload(p).level for p in all_profiles()]
        full = m.core_power(16)
        idle_saving = 1 - sum(m.core_power(n, "idle") for n in levels) / len(levels) / full
        gated_saving = 1 - sum(m.core_power(n, "gated") for n in levels) / len(levels) / full
        assert 100 * idle_saving == pytest.approx(25.5, abs=3.0)
        assert 100 * gated_saving == pytest.approx(69.1, abs=3.0)


class TestChipPower:
    def test_noc_fraction_scales_network(self):
        m = ChipPowerModel(16)
        half = m.chip_power(8, noc_active_fraction=0.5)
        full = m.chip_power(8, noc_active_fraction=1.0)
        assert half.noc == pytest.approx(full.noc / 2)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            ChipPowerModel(16).chip_power(8, noc_active_fraction=1.2)

    def test_scheme_power_ordering(self):
        """Full sprint burns the most; NoC-sprinting the least at the same
        level; naive fine-grained sits between."""
        m = ChipPowerModel(16)
        for level in (2, 4, 8):
            full = m.sprint_chip_power(level, "full").total
            naive = m.sprint_chip_power(level, "naive").total
            noc = m.sprint_chip_power(level, "noc_sprinting").total
            assert noc < naive < full

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            ChipPowerModel(16).sprint_chip_power(4, "turbo")

    def test_mc_count(self):
        assert ChipPowerModel(4).memory_controller_count() == 1
        assert ChipPowerModel(16).memory_controller_count() == 2
        assert ChipPowerModel(32).memory_controller_count() == 4


class TestTilePowers:
    def test_active_vs_dark(self):
        m = ChipPowerModel(16)
        tiles = m.tile_powers([0, 1, 4, 5])
        assert len(tiles) == 16
        p = m.params
        active = p.core_active_w + p.l2_bank_w + p.noc_per_node_w
        dark = p.core_gated_w + p.l2_bank_w
        assert tiles[0] == pytest.approx(active)
        assert tiles[15] == pytest.approx(dark)
        assert sum(1 for t in tiles if t == tiles[0]) == 4

    def test_floorplan_mapping(self):
        from repro.core.floorplanning import thermal_aware_floorplan

        m = ChipPowerModel(16)
        fp = thermal_aware_floorplan(4, 4)
        tiles = m.tile_powers([0, 1, 4, 5], lambda n: fp.position[n])
        hot_slots = {i for i, t in enumerate(tiles) if t > 5.0}
        assert hot_slots == {0, 3, 12, 15}  # the four corners

    def test_without_noc(self):
        m = ChipPowerModel(16)
        with_noc = m.tile_powers([0])[0]
        without = m.tile_powers([0], include_noc=False)[0]
        assert with_noc - without == pytest.approx(m.params.noc_per_node_w)

    def test_custom_params(self):
        params = ChipPowerParams(core_active_w=5.0, core_idle_fraction=0.5)
        assert params.core_idle_w == 2.5
        m = ChipPowerModel(16, params)
        assert m.core_power(1) == pytest.approx(5.0 + 15 * params.core_gated_w)
