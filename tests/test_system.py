"""Tests for the end-to-end NoCSprintingSystem facade."""

import pytest

from repro.cmp.workloads import all_profiles, get_profile
from repro.core.system import SCHEMES, NoCSprintingSystem


@pytest.fixture(scope="module")
def system():
    return NoCSprintingSystem()


class TestSchemeLevels:
    def test_non_sprinting_one_core(self, system):
        assert system.scheme_level(get_profile("dedup"), "non_sprinting") == 1

    def test_full_sprinting_all_cores(self, system):
        assert system.scheme_level(get_profile("dedup"), "full_sprinting") == 16

    def test_fine_grained_uses_optimum(self, system):
        assert system.scheme_level(get_profile("dedup"), "noc_sprinting") == 4
        assert system.scheme_level(get_profile("dedup"), "naive_fine_grained") == 4

    def test_unknown_scheme(self, system):
        with pytest.raises(ValueError):
            system.scheme_level(get_profile("dedup"), "overdrive")


class TestPerformance:
    def test_speedup_is_inverse_time(self, system):
        row = system.evaluate("dedup", "noc_sprinting")
        assert row.speedup == pytest.approx(1 / row.relative_time)

    def test_non_sprinting_baseline(self, system):
        assert system.evaluate("dedup", "non_sprinting").relative_time == 1.0

    def test_fig7_noc_beats_full_on_average(self, system):
        noc = [system.evaluate(p, "noc_sprinting").speedup for p in all_profiles()]
        full = [system.evaluate(p, "full_sprinting").speedup for p in all_profiles()]
        assert sum(noc) / 13 > sum(full) / 13
        assert sum(noc) / 13 == pytest.approx(3.6, abs=0.25)
        assert sum(full) / 13 == pytest.approx(1.9, abs=0.25)


class TestPower:
    def test_core_power_ordering(self, system):
        """Figure 8 per-benchmark ordering: noc < naive < full for any
        workload whose optimum is not full sprint."""
        for p in all_profiles():
            if p.optimal_level() == 16:
                continue
            noc = system.evaluate(p, "noc_sprinting").core_power_w
            naive = system.evaluate(p, "naive_fine_grained").core_power_w
            full = system.evaluate(p, "full_sprinting").core_power_w
            assert noc < naive < full, p.name

    def test_scalable_benchmarks_no_gating_headroom(self, system):
        """blackscholes/bodytrack sprint on all 16 cores, leaving no room
        for power gating (the paper's exception in Figure 8)."""
        for name in ("blackscholes", "bodytrack"):
            assert system.evaluate(name, "noc_sprinting").core_power_w == pytest.approx(
                system.evaluate(name, "full_sprinting").core_power_w
            )

    def test_chip_power_noc_component_gated(self, system):
        noc = system.evaluate("dedup", "noc_sprinting").chip_power
        full = system.evaluate("dedup", "full_sprinting").chip_power
        assert noc.noc == pytest.approx(full.noc * 4 / 16)

    def test_nominal_chip_power(self, system):
        report = system.evaluate("dedup", "non_sprinting").chip_power
        assert report.share("noc") == pytest.approx(0.35, abs=0.03)


class TestNetwork:
    def test_noc_sprinting_fewer_routers(self, system):
        noc = system.evaluate("dedup", "noc_sprinting", simulate_network=True,
                              warmup_cycles=200, measure_cycles=600).network
        full = system.evaluate("dedup", "full_sprinting", simulate_network=True,
                               warmup_cycles=200, measure_cycles=600).network
        assert noc.power.powered_router_count == 4
        assert full.power.powered_router_count == 16
        assert noc.avg_latency < full.avg_latency
        assert noc.total_power_w < full.total_power_w

    def test_topology_for_schemes(self, system):
        profile = get_profile("dedup")
        assert system.topology_for(profile, "noc_sprinting").level == 4
        assert system.topology_for(profile, "naive_fine_grained").level == 16
        assert system.topology_for(profile, "full_sprinting").level == 16


class TestThermalAndDuration:
    def test_fig12_ordering(self, system):
        def peak(scheme, floorplanned):
            return system.evaluate("dedup", scheme, thermal=True,
                                   floorplanned=floorplanned).peak_temperature_k

        full = peak("full_sprinting", False)
        cluster = peak("noc_sprinting", False)
        planned = peak("noc_sprinting", True)
        assert full > cluster > planned
        assert full == pytest.approx(358.3, abs=1.5)
        assert cluster == pytest.approx(347.79, abs=1.5)
        assert planned == pytest.approx(343.81, abs=1.5)

    def test_duration_gain_bounds(self, system):
        for p in all_profiles():
            gain = system.sprint_duration_gain(p)
            assert gain >= 1.0
        assert system.sprint_duration_gain("blackscholes") == 1.0
        assert system.sprint_duration_gain("dedup") > 1.0


class TestEvaluate:
    def test_full_row(self, system):
        row = system.evaluate("dedup", "noc_sprinting",
                              simulate_network=True, thermal=True)
        assert row.benchmark == "dedup"
        assert row.level == 4
        assert row.network is not None
        assert row.peak_temperature_k is not None
        assert row.sprint_duration_s is not None

    def test_minimal_row_fast(self, system):
        row = system.evaluate("vips", "full_sprinting")
        assert row.network is None
        assert row.peak_temperature_k is None
        assert row.sprint_duration_s is None

    def test_all_schemes_enumerable(self, system):
        for scheme in SCHEMES:
            row = system.evaluate("x264", scheme)
            assert row.scheme == scheme

    def test_profile_object_accepted(self, system):
        row = system.evaluate(get_profile("ferret"), "noc_sprinting")
        assert row.benchmark == "ferret"

    def test_floorplanned_system(self):
        system = NoCSprintingSystem(use_floorplan=True)
        assert system.floorplan is not None
        row = system.evaluate("dedup", "noc_sprinting", thermal=True)
        assert row.peak_temperature_k == pytest.approx(343.81, abs=1.5)


class TestDeprecatedDelegates:
    """The per-axis one-number methods still work but warn once per call."""

    def test_each_delegate_warns_and_matches_evaluate(self, system):
        row = system.evaluate("dedup", "noc_sprinting")
        with pytest.warns(DeprecationWarning, match="execution_time"):
            assert system.execution_time("dedup", "noc_sprinting") == row.relative_time
        with pytest.warns(DeprecationWarning, match="speedup"):
            assert system.speedup("dedup", "noc_sprinting") == row.speedup
        with pytest.warns(DeprecationWarning, match="core_power"):
            assert system.core_power("dedup", "noc_sprinting") == row.core_power_w
        with pytest.warns(DeprecationWarning, match="chip_power"):
            assert system.chip_power("dedup", "noc_sprinting") == row.chip_power

    def test_network_and_thermal_delegates_warn(self, system):
        with pytest.warns(DeprecationWarning, match="evaluate_network"):
            net = system.evaluate_network("dedup", "noc_sprinting",
                                          warmup_cycles=100, measure_cycles=200)
        assert net.sim.packets_measured >= 0
        with pytest.warns(DeprecationWarning, match="peak_temperature"):
            peak = system.peak_temperature("dedup", "noc_sprinting")
        assert peak > 300.0
