"""Tests for the end-to-end NoCSprintingSystem facade."""

import pytest

from repro.cmp.workloads import all_profiles, get_profile
from repro.core.system import SCHEMES, NoCSprintingSystem


@pytest.fixture(scope="module")
def system():
    return NoCSprintingSystem()


class TestSchemeLevels:
    def test_non_sprinting_one_core(self, system):
        assert system.scheme_level(get_profile("dedup"), "non_sprinting") == 1

    def test_full_sprinting_all_cores(self, system):
        assert system.scheme_level(get_profile("dedup"), "full_sprinting") == 16

    def test_fine_grained_uses_optimum(self, system):
        assert system.scheme_level(get_profile("dedup"), "noc_sprinting") == 4
        assert system.scheme_level(get_profile("dedup"), "naive_fine_grained") == 4

    def test_unknown_scheme(self, system):
        with pytest.raises(ValueError):
            system.scheme_level(get_profile("dedup"), "overdrive")


class TestPerformance:
    def test_speedup_is_inverse_time(self, system):
        t = system.execution_time("dedup", "noc_sprinting")
        assert system.speedup("dedup", "noc_sprinting") == pytest.approx(1 / t)

    def test_non_sprinting_baseline(self, system):
        assert system.execution_time("dedup", "non_sprinting") == 1.0

    def test_fig7_noc_beats_full_on_average(self, system):
        noc = [system.speedup(p, "noc_sprinting") for p in all_profiles()]
        full = [system.speedup(p, "full_sprinting") for p in all_profiles()]
        assert sum(noc) / 13 > sum(full) / 13
        assert sum(noc) / 13 == pytest.approx(3.6, abs=0.25)
        assert sum(full) / 13 == pytest.approx(1.9, abs=0.25)


class TestPower:
    def test_core_power_ordering(self, system):
        """Figure 8 per-benchmark ordering: noc < naive < full for any
        workload whose optimum is not full sprint."""
        for p in all_profiles():
            if p.optimal_level() == 16:
                continue
            noc = system.core_power(p, "noc_sprinting")
            naive = system.core_power(p, "naive_fine_grained")
            full = system.core_power(p, "full_sprinting")
            assert noc < naive < full, p.name

    def test_scalable_benchmarks_no_gating_headroom(self, system):
        """blackscholes/bodytrack sprint on all 16 cores, leaving no room
        for power gating (the paper's exception in Figure 8)."""
        for name in ("blackscholes", "bodytrack"):
            assert system.core_power(name, "noc_sprinting") == pytest.approx(
                system.core_power(name, "full_sprinting")
            )

    def test_chip_power_noc_component_gated(self, system):
        noc = system.chip_power("dedup", "noc_sprinting")
        full = system.chip_power("dedup", "full_sprinting")
        assert noc.noc == pytest.approx(full.noc * 4 / 16)

    def test_nominal_chip_power(self, system):
        report = system.chip_power("dedup", "non_sprinting")
        assert report.share("noc") == pytest.approx(0.35, abs=0.03)


class TestNetwork:
    def test_noc_sprinting_fewer_routers(self, system):
        noc = system.evaluate_network("dedup", "noc_sprinting",
                                      warmup_cycles=200, measure_cycles=600)
        full = system.evaluate_network("dedup", "full_sprinting",
                                       warmup_cycles=200, measure_cycles=600)
        assert noc.power.powered_router_count == 4
        assert full.power.powered_router_count == 16
        assert noc.avg_latency < full.avg_latency
        assert noc.total_power_w < full.total_power_w

    def test_topology_for_schemes(self, system):
        profile = get_profile("dedup")
        assert system.topology_for(profile, "noc_sprinting").level == 4
        assert system.topology_for(profile, "naive_fine_grained").level == 16
        assert system.topology_for(profile, "full_sprinting").level == 16


class TestThermalAndDuration:
    def test_fig12_ordering(self, system):
        full = system.peak_temperature("dedup", "full_sprinting")
        cluster = system.peak_temperature("dedup", "noc_sprinting", floorplanned=False)
        planned = system.peak_temperature("dedup", "noc_sprinting", floorplanned=True)
        assert full > cluster > planned
        assert full == pytest.approx(358.3, abs=1.5)
        assert cluster == pytest.approx(347.79, abs=1.5)
        assert planned == pytest.approx(343.81, abs=1.5)

    def test_duration_gain_bounds(self, system):
        for p in all_profiles():
            gain = system.sprint_duration_gain(p)
            assert gain >= 1.0
        assert system.sprint_duration_gain("blackscholes") == 1.0
        assert system.sprint_duration_gain("dedup") > 1.0


class TestEvaluate:
    def test_full_row(self, system):
        row = system.evaluate("dedup", "noc_sprinting",
                              simulate_network=True, thermal=True)
        assert row.benchmark == "dedup"
        assert row.level == 4
        assert row.network is not None
        assert row.peak_temperature_k is not None
        assert row.sprint_duration_s is not None

    def test_minimal_row_fast(self, system):
        row = system.evaluate("vips", "full_sprinting")
        assert row.network is None
        assert row.peak_temperature_k is None
        assert row.sprint_duration_s is None

    def test_all_schemes_enumerable(self, system):
        for scheme in SCHEMES:
            row = system.evaluate("x264", scheme)
            assert row.scheme == scheme

    def test_profile_object_accepted(self, system):
        row = system.evaluate(get_profile("ferret"), "noc_sprinting")
        assert row.benchmark == "ferret"

    def test_floorplanned_system(self):
        system = NoCSprintingSystem(use_floorplan=True)
        assert system.floorplan is not None
        row = system.evaluate("dedup", "noc_sprinting", thermal=True)
        assert row.peak_temperature_k == pytest.approx(343.81, abs=1.5)
