"""The public API surface: every advertised name imports and is real."""

import importlib

import pytest

PACKAGES = {
    "repro": [
        "NoCConfig", "SystemConfig", "default_config", "CdorRouter",
        "NoCSprintingSystem", "SprintController", "SprintPlan",
        "SprintTopology", "check_deadlock_freedom", "sprint_order",
        "thermal_aware_floorplan", "EvaluationReport", "SimulationSpec",
        "TrafficSpec", "run_simulation", "SweepRunner", "ResultCache",
        "register_backend", "get_backend", "list_backends",
        "Ledger", "RunRecord", "compare_runs",
        "WIRE_VERSION", "WireFormatError", "spec_to_wire", "spec_from_wire",
    ],
    "repro.service": [
        "ExperimentService", "ExperimentServer", "SweepTicket",
        "ClientAccounts", "TokenBucket", "RateLimited", "BudgetExhausted",
        "error_payload", "SERVICE_COUNTER_HELP", "SERVICE_GAUGE_HELP",
    ],
    "repro.telemetry": [
        "Telemetry", "Ledger", "RunRecord", "compare_runs", "Comparison",
        "MetricPolicy",
    ],
    "repro.noc.backends": [
        "SimBackend", "BackendCapabilityError", "register_backend",
        "get_backend", "list_backends", "required_capabilities",
        "check_capabilities", "ReferenceBackend", "VectorizedBackend",
    ],
    "repro.core": [
        "SprintTopology", "CdorRouter", "LbdrRouter", "Floorplan",
        "SprintController", "SprintScheduler", "NoCSprintingSystem",
        "BypassPlan", "plan_bypass", "co_sprint_regions",
        "fault_aware_topology", "sprint_aware_gating",
    ],
    "repro.noc": [
        "Network", "Router", "Packet", "Flit", "TrafficGenerator",
        "run_simulation", "run_llc_simulation", "zero_load_latency",
        "TraceRecorder", "TraceTraffic", "build_adaptive_table",
        "TimeoutGatingPolicy", "break_even_cycles", "SimBackend",
        "BackendCapabilityError", "register_backend", "get_backend",
        "list_backends",
    ],
    "repro.power": [
        "RouterPowerModel", "LinkPowerModel", "ChipPowerModel",
        "network_power", "DvfsPlanner", "burst_energy", "TECH_45NM",
    ],
    "repro.thermal": [
        "ThermalGrid", "ThermalParams", "PCMParams", "sprint_phases",
        "sprint_duration", "SprintTransient", "duration_gain",
    ],
    "repro.cmp": [
        "BenchmarkProfile", "PARSEC_PROFILES", "get_profile",
        "profile_workload", "LlcAccessStream", "OnlineParallelismMonitor",
        "traffic_for_workload",
    ],
    "repro.util": [
        "Coord", "manhattan", "euclidean", "is_discretely_convex",
        "format_table", "stream", "RunningStats",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PACKAGES))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PACKAGES[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", sorted(PACKAGES))
def test_all_lists_are_accurate(module_name):
    module = importlib.import_module(module_name)
    if not hasattr(module, "__all__"):
        pytest.skip(f"{module_name} has no __all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_dataclasses_are_frozen_where_promised():
    """Configuration objects must be immutable (shared across the system)."""
    import dataclasses

    from repro.cmp.perf_model import BenchmarkProfile
    from repro.config import NoCConfig, SystemConfig
    from repro.core.floorplanning import Floorplan
    from repro.thermal.grid import ThermalParams
    from repro.thermal.pcm import PCMParams

    for cls in (NoCConfig, SystemConfig, Floorplan, ThermalParams, PCMParams,
                BenchmarkProfile):
        assert dataclasses.fields(cls)  # is a dataclass
        params = getattr(cls, "__dataclass_params__")
        assert params.frozen, f"{cls.__name__} should be frozen"
