"""Property-based end-to-end network invariants.

Hypothesis drives the simulator across random sprint levels, loads and
patterns; the invariants (conservation, in-order flows, latency floor)
must hold for every draw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation, zero_load_latency
from repro.noc.traffic import TrafficGenerator

CFG = NoCConfig()


@settings(max_examples=15, deadline=None)
@given(
    level=st.integers(2, 16),
    rate=st.floats(0.02, 0.35),
    seed=st.integers(0, 1000),
)
def test_property_no_loss_no_invention(level, rate, seed):
    """Every measured packet injected below saturation is delivered,
    exactly once."""
    topo = SprintTopology.for_level(4, 4, level)
    routing = "cdor" if level < 16 else "xy"
    traffic = TrafficGenerator(list(topo.active_nodes), rate,
                               CFG.packet_length_flits, seed=seed)
    result = run_simulation(topo, traffic, CFG, routing=routing,
                            warmup_cycles=200, measure_cycles=600)
    assert not result.saturated
    assert result.packets_ejected == result.packets_measured


@settings(max_examples=15, deadline=None)
@given(
    level=st.integers(2, 16),
    rate=st.floats(0.02, 0.3),
    seed=st.integers(0, 1000),
)
def test_property_latency_floor(level, rate, seed):
    """No packet beats the pipeline: average latency is bounded below by
    the minimum local-delivery latency and above by a sane multiple of the
    zero-load latency at these sub-saturation rates."""
    topo = SprintTopology.for_level(4, 4, level)
    routing = "cdor" if level < 16 else "xy"
    traffic = TrafficGenerator(list(topo.active_nodes), rate,
                               CFG.packet_length_flits, seed=seed)
    result = run_simulation(topo, traffic, CFG, routing=routing,
                            warmup_cycles=200, measure_cycles=600)
    if result.packets_measured == 0:
        return
    floor = CFG.router_pipeline_stages + CFG.packet_length_flits - 1
    assert result.avg_latency >= floor - 1
    assert result.avg_latency <= 5 * zero_load_latency(topo, CFG, routing)


@settings(max_examples=10, deadline=None)
@given(
    pattern=st.sampled_from(["uniform", "neighbor", "tornado", "shuffle"]),
    seed=st.integers(0, 500),
)
def test_property_patterns_deliver_on_full_mesh(pattern, seed):
    traffic = TrafficGenerator(list(range(16)), 0.2,
                               CFG.packet_length_flits, pattern, seed=seed)
    topo = SprintTopology.for_level(4, 4, 16)
    result = run_simulation(topo, traffic, CFG, routing="xy",
                            warmup_cycles=200, measure_cycles=600)
    assert not result.saturated
    assert result.packets_ejected == result.packets_measured
