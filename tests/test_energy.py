"""Tests for energy / EDP metrics."""

import pytest

from repro.core.system import NoCSprintingSystem
from repro.power.energy import burst_energy, energy_comparison


@pytest.fixture(scope="module")
def system():
    return NoCSprintingSystem()


class TestEnergyReport:
    def test_energy_is_power_times_time(self, system):
        report = burst_energy(system, "dedup", "noc_sprinting", burst_work_s=2.0)
        assert report.energy_j == pytest.approx(
            report.avg_power_w * report.execution_time_s
        )

    def test_edp_chain(self, system):
        report = burst_energy(system, "dedup", "full_sprinting")
        assert report.edp_js == pytest.approx(report.energy_j * report.execution_time_s)
        assert report.ed2p_js2 == pytest.approx(report.edp_js * report.execution_time_s)

    def test_work_scales_linearly(self, system):
        one = burst_energy(system, "vips", "noc_sprinting", 1.0)
        two = burst_energy(system, "vips", "noc_sprinting", 2.0)
        assert two.energy_j == pytest.approx(2 * one.energy_j)

    def test_invalid_work(self, system):
        with pytest.raises(ValueError):
            burst_energy(system, "dedup", "noc_sprinting", 0.0)


class TestSchemeEnergetics:
    def test_noc_sprinting_lowest_energy_for_peaking_workloads(self, system):
        """For a workload whose optimum is 4 cores, NoC-sprinting beats
        both baselines on raw energy *and* on EDP."""
        for name in ("dedup", "vips", "canneal", "streamcluster"):
            reports = energy_comparison(system, name)
            noc = reports["noc_sprinting"]
            assert noc.energy_j < reports["full_sprinting"].energy_j, name
            assert noc.energy_j < reports["non_sprinting"].energy_j, name
            assert noc.edp_js < reports["full_sprinting"].edp_js, name
            assert noc.edp_js < reports["non_sprinting"].edp_js, name

    def test_scalable_workload_sprint_beats_nominal_on_edp(self, system):
        """Sprinting burns more power but for so much less time that EDP
        still favours it (the race-to-idle argument for sprinting)."""
        reports = energy_comparison(system, "blackscholes")
        assert reports["noc_sprinting"].edp_js < reports["non_sprinting"].edp_js

    def test_full_sprint_energy_disaster_for_serial_workloads(self, system):
        """freqmine on 16 cores: more power for *longer* execution --
        strictly worse energy than single-core nominal."""
        reports = energy_comparison(system, "freqmine")
        assert reports["full_sprinting"].energy_j > 3 * reports["non_sprinting"].energy_j

    def test_suite_mean_energy_saving(self, system):
        """Averaged over PARSEC, NoC-sprinting cuts burst energy by more
        than half relative to full-sprinting."""
        from repro.cmp import all_profiles

        noc_total = 0.0
        full_total = 0.0
        for profile in all_profiles():
            reports = energy_comparison(system, profile)
            noc_total += reports["noc_sprinting"].energy_j
            full_total += reports["full_sprinting"].energy_j
        assert noc_total < 0.5 * full_total
