"""Tests for the simulation driver (warmup/measure/drain methodology)."""

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation, zero_load_latency
from repro.noc.traffic import TrafficGenerator

CFG = NoCConfig()
FULL = SprintTopology.for_level(4, 4, 16)


def simulate(level=16, rate=0.1, routing="xy", seed=0, **kwargs):
    topo = SprintTopology.for_level(4, 4, level)
    traffic = TrafficGenerator(
        list(topo.active_nodes), rate, CFG.packet_length_flits, seed=seed
    )
    return run_simulation(topo, traffic, CFG, routing=routing, **kwargs)


class TestBasicRun:
    def test_low_load_completes(self):
        res = simulate(rate=0.05, warmup_cycles=200, measure_cycles=800)
        assert not res.saturated
        assert res.packets_ejected == res.packets_measured
        assert res.avg_latency > 0
        assert res.endpoint_count == 16

    def test_latency_near_zero_load_analytic(self):
        res = simulate(rate=0.02, warmup_cycles=300, measure_cycles=2000)
        analytic = zero_load_latency(FULL, CFG, "xy")
        assert res.avg_latency == pytest.approx(analytic, rel=0.10)

    def test_deterministic_for_seed(self):
        a = simulate(rate=0.2, seed=5, warmup_cycles=200, measure_cycles=600)
        b = simulate(rate=0.2, seed=5, warmup_cycles=200, measure_cycles=600)
        assert a.avg_latency == b.avg_latency
        assert a.packets_measured == b.packets_measured

    def test_latency_increases_with_load(self):
        low = simulate(rate=0.05, warmup_cycles=300, measure_cycles=1200)
        high = simulate(rate=0.6, warmup_cycles=300, measure_cycles=1200)
        assert high.avg_latency > low.avg_latency

    def test_accepted_tracks_offered_below_saturation(self):
        res = simulate(rate=0.3, warmup_cycles=400, measure_cycles=2000)
        assert res.accepted_flits_per_cycle == pytest.approx(0.3, rel=0.12)

    def test_cdor_region_runs(self):
        res = simulate(level=4, rate=0.2, routing="cdor",
                       warmup_cycles=300, measure_cycles=1000)
        assert not res.saturated
        assert res.powered_router_count == 4

    def test_hops_smaller_in_region(self):
        full = simulate(rate=0.1, warmup_cycles=300, measure_cycles=1000)
        region = simulate(level=4, rate=0.1, routing="cdor",
                          warmup_cycles=300, measure_cycles=1000)
        assert region.avg_hops < full.avg_hops


class TestSaturation:
    def test_overload_flags_saturated(self):
        res = simulate(rate=1.8, warmup_cycles=200, measure_cycles=800,
                       drain_cycles=800)
        assert res.saturated
        assert res.packets_ejected < res.packets_measured

    def test_saturated_run_respects_deadline(self):
        res = simulate(rate=1.8, warmup_cycles=200, measure_cycles=400,
                       drain_cycles=500)
        assert res.cycles_run <= 200 + 400 + 500 + 1


class TestZeroLoadLatency:
    def test_single_node(self):
        topo = SprintTopology.for_level(4, 4, 1)
        assert zero_load_latency(topo, CFG) == CFG.router_pipeline_stages + 4

    def test_grows_with_region(self):
        levels = [2, 4, 8, 16]
        lats = [
            zero_load_latency(SprintTopology.for_level(4, 4, level), CFG)
            for level in levels
        ]
        assert lats == sorted(lats)

    def test_full_mesh_value(self):
        # avg distinct-pair hops on 4x4 = 40/15; latency = 5*(hops+1)+4
        expected = 5 * (40 / 15 + 1) + 4
        assert zero_load_latency(FULL, CFG, "xy") == pytest.approx(expected)


class TestActivityWindow:
    def test_cycles_powered_equals_measure_window(self):
        res = simulate(rate=0.1, warmup_cycles=300, measure_cycles=1000)
        for activity in res.activity.routers.values():
            assert activity.cycles_powered == 1000

    def test_activity_scales_with_rate(self):
        low = simulate(rate=0.05, warmup_cycles=300, measure_cycles=1500)
        high = simulate(rate=0.4, warmup_cycles=300, measure_cycles=1500)
        assert (
            high.activity.total.crossbar_traversals
            > 3 * low.activity.total.crossbar_traversals
        )
