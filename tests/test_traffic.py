"""Tests for synthetic traffic generation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.traffic import TrafficGenerator


class TestValidation:
    def test_needs_endpoints(self):
        with pytest.raises(ValueError):
            TrafficGenerator([], 0.1, 5)

    def test_negative_rate(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1], -0.1, 5)

    def test_bad_packet_length(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1], 0.1, 0)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1], 0.1, 5, pattern="butterfly")

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1, 2], 0.1, 5, pattern="transpose")

    def test_permutation_needs_two(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0], 0.1, 5, pattern="neighbor")

    def test_hotspot_fraction_bounds(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1], 0.1, 5, pattern="hotspot", hotspot_fraction=1.5)

    def test_hotspot_endpoint_must_be_member(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1], 0.1, 5, pattern="hotspot", hotspot_endpoint=9)


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = TrafficGenerator([0, 1, 2, 3], 0.3, 5, seed=11)
        b = TrafficGenerator([0, 1, 2, 3], 0.3, 5, seed=11)
        pk_a = [ (p.source, p.destination) for c in range(200) for p in a.packets_for_cycle(c, False)]
        pk_b = [ (p.source, p.destination) for c in range(200) for p in b.packets_for_cycle(c, False)]
        assert pk_a == pk_b

    def test_rate_approximately_honored(self):
        rate, length = 0.4, 5
        gen = TrafficGenerator(list(range(16)), rate, length, seed=3)
        total_flits = sum(
            p.length for c in range(4000) for p in gen.packets_for_cycle(c, False)
        )
        per_node_per_cycle = total_flits / (4000 * 16)
        assert per_node_per_cycle == pytest.approx(rate, rel=0.07)

    def test_zero_rate_generates_nothing(self):
        gen = TrafficGenerator([0, 1], 0.0, 5)
        assert all(not gen.packets_for_cycle(c, False) for c in range(100))

    def test_measured_flag_propagates(self):
        gen = TrafficGenerator([0, 1], 1.0, 1, seed=1)
        packets = gen.packets_for_cycle(0, measured=True)
        assert packets and all(p.measured for p in packets)

    def test_pids_unique_and_increasing(self):
        gen = TrafficGenerator(list(range(8)), 0.8, 2, seed=5)
        pids = [p.pid for c in range(100) for p in gen.packets_for_cycle(c, False)]
        assert pids == sorted(pids)
        assert len(set(pids)) == len(pids)

    def test_no_self_traffic(self):
        gen = TrafficGenerator(list(range(8)), 1.0, 1, seed=9)
        for c in range(200):
            for p in gen.packets_for_cycle(c, False):
                assert p.source != p.destination


class TestPatterns:
    def test_uniform_covers_all_destinations(self):
        gen = TrafficGenerator(list(range(4)), 1.0, 1, "uniform", seed=2)
        dests = {p.destination for c in range(300) for p in gen.packets_for_cycle(c, False)}
        assert dests == {0, 1, 2, 3}

    def test_neighbor_ring(self):
        gen = TrafficGenerator([3, 5, 9], 1.0, 1, "neighbor", seed=2)
        mapping = {}
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                mapping[p.source] = p.destination
        assert mapping == {3: 5, 5: 9, 9: 3}

    def test_bit_complement(self):
        gen = TrafficGenerator([0, 1, 2, 3], 1.0, 1, "bit_complement", seed=2)
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                i = [0, 1, 2, 3].index(p.source)
                assert p.destination == [0, 1, 2, 3][3 - i]

    def test_bit_complement_skips_self_center(self):
        gen = TrafficGenerator([0, 1, 2], 1.0, 1, "bit_complement", seed=2)
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                assert p.source != 1  # middle maps to itself -> skipped

    def test_transpose_full_mesh(self):
        endpoints = list(range(16))
        gen = TrafficGenerator(endpoints, 1.0, 1, "transpose", seed=2)
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                row, col = divmod(p.source, 4)
                assert p.destination == col * 4 + row

    def test_tornado(self):
        endpoints = list(range(8))
        gen = TrafficGenerator(endpoints, 1.0, 1, "tornado", seed=2)
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                assert p.destination == (p.source + 3) % 8

    def test_hotspot_bias(self):
        gen = TrafficGenerator(list(range(8)), 1.0, 1, "hotspot", seed=2,
                               hotspot_fraction=0.9)
        to_hotspot = 0
        total = 0
        for c in range(500):
            for p in gen.packets_for_cycle(c, False):
                total += 1
                if p.destination == 0:
                    to_hotspot += 1
        assert to_hotspot / total > 0.5

    def test_shuffle_rotation(self):
        gen = TrafficGenerator(list(range(8)), 1.0, 1, "shuffle", seed=2)
        for c in range(50):
            for p in gen.packets_for_cycle(c, False):
                i = p.source
                assert p.destination == ((i << 1) | (i >> 2)) & 7

    def test_shuffle_needs_power_of_two(self):
        with pytest.raises(ValueError):
            TrafficGenerator([0, 1, 2], 0.1, 5, pattern="shuffle")

    def test_shuffle_skips_fixed_points(self):
        # endpoints 0 and k-1 map to themselves under rotation
        gen = TrafficGenerator(list(range(8)), 1.0, 1, "shuffle", seed=2)
        for c in range(100):
            for p in gen.packets_for_cycle(c, False):
                assert p.source not in (0, 7)

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(2, 16),
        pattern=st.sampled_from(["uniform", "neighbor", "bit_complement", "tornado"]),
        seed=st.integers(0, 100),
    )
    def test_property_destinations_are_endpoints(self, k, pattern, seed):
        endpoints = list(range(0, 2 * k, 2))
        gen = TrafficGenerator(endpoints, 0.9, 2, pattern, seed=seed)
        for c in range(60):
            for p in gen.packets_for_cycle(c, False):
                assert p.source in endpoints
                assert p.destination in endpoints
                assert p.source != p.destination
