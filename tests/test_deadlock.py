"""Deadlock-freedom verification of CDOR (the paper's Section 3.2 claim)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdor import CdorRouter
from repro.core.deadlock import (
    channel_dependency_graph,
    check_all_sprint_levels,
    check_deadlock_freedom,
)
from repro.core.topological import SprintTopology


class TestChannelDependencyGraph:
    def test_two_node_region(self):
        topo = SprintTopology.for_level(4, 4, 2)
        graph = channel_dependency_graph(CdorRouter(topo))
        # only channels 0<->1, no multi-hop deps
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 0

    def test_full_mesh_xy_turns_only(self):
        """On the full mesh CDOR == XY, whose CDG has no NE/SE/NW/SW deps."""
        topo = SprintTopology.for_level(4, 4, 16)
        graph = channel_dependency_graph(CdorRouter(topo))
        for (a, b), (b2, c) in graph.edges():
            assert b == b2
            ca, cb, cc = topo.coord(a), topo.coord(b), topo.coord(c)
            in_vertical = ca.x == cb.x and ca.y != cb.y
            out_horizontal = cb.y == cc.y and cb.x != cc.x
            assert not (in_vertical and out_horizontal), (
                f"Y->X turn {a}->{b}->{c} impossible under plain XY"
            )

    def test_dependencies_share_middle_router(self):
        topo = SprintTopology.for_level(4, 4, 8)
        graph = channel_dependency_graph(CdorRouter(topo))
        for (a, b), (b2, c) in graph.edges():
            assert b == b2


class TestDeadlockFreedom:
    def test_all_levels_4x4(self):
        reports = check_all_sprint_levels(4, 4)
        assert len(reports) == 16
        for level, report in reports.items():
            assert report.acyclic, f"level {level} has cycle {report.cycle}"

    def test_all_levels_4x4_hamming_ordering(self):
        reports = check_all_sprint_levels(4, 4, metric="hamming")
        assert all(r.acyclic for r in reports.values())

    def test_all_masters_4x4(self):
        """Deadlock freedom must hold wherever the master core is placed
        (the paper lists centre, OS core and MC-adjacent placements)."""
        for master in range(16):
            reports = check_all_sprint_levels(4, 4, master=master)
            for level, report in reports.items():
                assert report.acyclic, (
                    f"master {master} level {level}: cycle {report.cycle}"
                )

    def test_sampled_levels_6x6(self):
        for level in (3, 7, 12, 20, 29, 36):
            topo = SprintTopology.for_level(6, 6, level)
            assert check_deadlock_freedom(CdorRouter(topo)).acyclic

    def test_report_counts(self):
        topo = SprintTopology.for_level(4, 4, 4)
        report = check_deadlock_freedom(CdorRouter(topo))
        assert report.acyclic
        assert bool(report) is True
        assert report.channel_count == 8  # 4 bidirectional links
        assert report.dependency_count > 0

    @settings(max_examples=30, deadline=None)
    @given(
        width=st.integers(2, 5),
        height=st.integers(2, 5),
        data=st.data(),
    )
    def test_property_deadlock_free(self, width, height, data):
        master = data.draw(st.integers(0, width * height - 1))
        level = data.draw(st.integers(2, width * height))
        topo = SprintTopology.for_level(width, height, level, master)
        report = check_deadlock_freedom(CdorRouter(topo))
        assert report.acyclic, f"cycle: {report.cycle}"


class TestNonConvexCounterexample:
    def test_cdg_checker_detects_cycles(self):
        """Sanity: the checker is not vacuous -- a hand-built cyclic digraph
        is detected, so a deadlock-prone routing function would be caught."""
        graph = nx.DiGraph([(1, 2), (2, 3), (3, 1)])
        with pytest.raises(Exception):
            nx.find_cycle(nx.DiGraph([(1, 2)]))  # acyclic raises NetworkXNoCycle
        assert list(nx.find_cycle(graph))


class TestDeadlockFreedomOnDegradedRegions:
    """The mid-run reconfiguration story rests on this: whatever region the
    fault layer retreats to, CDOR on it stays deadlock-free."""

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(2, 5),
        height=st.integers(2, 5),
        data=st.data(),
    )
    def test_property_degraded_regions_deadlock_free(self, width, height, data):
        from repro.core.faults import degraded_topology

        n = width * height
        faults = data.draw(st.sets(st.integers(1, n - 1), max_size=n // 3))
        level = data.draw(st.integers(1, n))
        topo = degraded_topology(width, height, level, faults)
        assert not set(topo.active_nodes) & faults
        report = check_deadlock_freedom(CdorRouter(topo))
        assert report.acyclic, (
            f"faults {sorted(faults)} level {level}: cycle {report.cycle}"
        )
