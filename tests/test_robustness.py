"""Robustness checks: seed stability and cross-feature combinations."""

import pytest

from repro.cmp.llc import LlcAccessStream, LlcArchitecture
from repro.config import NoCConfig
from repro.core.bypass import plan_bypass
from repro.core.system import NoCSprintingSystem
from repro.core.topological import SprintTopology
from repro.noc.llc_sim import run_llc_simulation


class TestSeedStability:
    def test_fig9_style_reduction_stable_across_seeds(self):
        """The latency reduction of Figure 9 is a property, not a seed
        artifact: two independent seeds agree within a few points."""
        system = NoCSprintingSystem()

        def reduction(seed):
            noc = system.evaluate("dedup", "noc_sprinting", simulate_network=True,
                                  seed=seed, warmup_cycles=250,
                                  measure_cycles=900).network
            full = system.evaluate("dedup", "full_sprinting", simulate_network=True,
                                   seed=seed, warmup_cycles=250,
                                   measure_cycles=900).network
            return 1 - noc.avg_latency / full.avg_latency

        a, b = reduction(1), reduction(2)
        assert a == pytest.approx(b, abs=0.08)
        assert a > 0.15 and b > 0.15

    def test_fig10_style_saving_stable_across_seeds(self):
        system = NoCSprintingSystem()

        def saving(seed):
            noc = system.evaluate("canneal", "noc_sprinting", simulate_network=True,
                                  seed=seed, warmup_cycles=250,
                                  measure_cycles=900).network
            full = system.evaluate("canneal", "full_sprinting", simulate_network=True,
                                   seed=seed, warmup_cycles=250,
                                   measure_cycles=900).network
            return 1 - noc.total_power_w / full.total_power_w

        a, b = saving(3), saving(4)
        assert a == pytest.approx(b, abs=0.05)
        assert a > 0.7


class TestCrossFeatureCombinations:
    def test_llc_bypass_on_8x8(self):
        """The Section 3.4 machinery scales to the 64-node mesh."""
        cfg = NoCConfig(mesh_width=8, mesh_height=8)
        region = SprintTopology.for_level(8, 8, 8)
        stream = LlcAccessStream(list(region.active_nodes),
                                 LlcArchitecture.TILED, 0.03,
                                 bank_count=64, seed=1)
        result = run_llc_simulation(region, stream, cfg, "cdor",
                                    bypass=plan_bypass(region),
                                    warmup_cycles=250, measure_cycles=800)
        assert not result.saturated
        assert result.dark_access_fraction == pytest.approx(56 / 64, abs=0.1)

    def test_llc_bypass_on_fault_aware_region(self):
        """Bypass planning composes with fault-aware regions."""
        from repro.core.faults import fault_aware_topology

        cfg = NoCConfig()
        topo = fault_aware_topology(4, 4, 6, {5})
        plan = plan_bypass(topo)
        assert 5 in plan.proxy  # the faulty node's bank still has a proxy
        stream = LlcAccessStream(list(topo.active_nodes),
                                 LlcArchitecture.TILED, 0.04, seed=2)
        result = run_llc_simulation(topo, stream, cfg, "cdor", bypass=plan,
                                    warmup_cycles=250, measure_cycles=800)
        assert not result.saturated

    def test_coscheduled_regions_simulate_independently(self):
        """Each co-scheduled region runs its own network simulation with
        its own traffic; both complete without interference (they share no
        routers by construction)."""
        from repro.core.coschedule import co_sprint_regions
        from repro.noc.sim import run_simulation
        from repro.noc.traffic import TrafficGenerator

        cfg = NoCConfig()
        sprints = co_sprint_regions(4, 4, [(0, 4), (15, 4)])
        for sprint in sprints:
            traffic = TrafficGenerator(list(sprint.topology.active_nodes), 0.15,
                                       cfg.packet_length_flits, seed=6)
            result = run_simulation(sprint.topology, traffic, cfg, routing="cdor",
                                    warmup_cycles=250, measure_cycles=800)
            assert not result.saturated
            assert result.packets_ejected == result.packets_measured

    def test_dvfs_points_respect_fig2_trend(self):
        """The DVFS planner's chip powers and the Figure 2 router powers
        scale consistently: dimming always reduces both."""
        from repro.power.dvfs import DIM_POINTS, DvfsPlanner
        from repro.power.router_power import RouterPowerModel

        planner = DvfsPlanner()
        chip_powers = [planner.chip_power(4, p) for p in DIM_POINTS]
        router_powers = [
            RouterPowerModel(NoCConfig(), vdd=p.vdd, frequency_hz=p.frequency_hz)
            .breakdown_at_injection(0.2).total
            for p in DIM_POINTS
        ]
        assert chip_powers == sorted(chip_powers, reverse=True)
        assert router_powers == sorted(router_powers, reverse=True)
