"""Tests for the run-time parallelism monitor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.monitor import (
    MonitorResult,
    OnlineParallelismMonitor,
    monitor_agrees_with_profile,
    noisy_profile_measure,
)
from repro.cmp.workloads import all_profiles, get_profile


class TestValidation:
    def test_levels_must_ascend(self):
        with pytest.raises(ValueError):
            OnlineParallelismMonitor(levels=[4, 2, 1])

    def test_levels_nonempty(self):
        with pytest.raises(ValueError):
            OnlineParallelismMonitor(levels=[])

    def test_threshold_non_negative(self):
        with pytest.raises(ValueError):
            OnlineParallelismMonitor(improvement_threshold=-0.1)

    def test_samples_positive(self):
        with pytest.raises(ValueError):
            OnlineParallelismMonitor(samples_per_level=0)

    def test_negative_observation_rejected(self):
        monitor = OnlineParallelismMonitor()
        with pytest.raises(ValueError):
            monitor.calibrate(lambda level: -1.0)


class TestNoiselessCalibration:
    def test_finds_profile_optimum_for_every_benchmark(self):
        """With exact observations, online monitoring reproduces the
        off-line profiling decision for all 13 PARSEC workloads."""
        monitor = OnlineParallelismMonitor(samples_per_level=1)
        for profile in all_profiles():
            result = monitor.calibrate(lambda level, p=profile: p.speedup(level))
            assert result.level == profile.optimal_level(), profile.name

    def test_early_stop_saves_epochs(self):
        """freqmine stops after probing levels 1 and 2 only."""
        monitor = OnlineParallelismMonitor(samples_per_level=1)
        result = monitor.calibrate(lambda level: get_profile("freqmine").speedup(level))
        assert result.level == 1
        assert result.epochs == 2

    def test_scalable_probes_every_level(self):
        monitor = OnlineParallelismMonitor(samples_per_level=1)
        result = monitor.calibrate(
            lambda level: get_profile("blackscholes").speedup(level)
        )
        assert result.level == 16
        assert result.epochs == 5


class TestNoisyCalibration:
    def test_moderate_noise_still_converges(self):
        for profile in all_profiles():
            assert monitor_agrees_with_profile(profile, noise=0.03, seed=11), (
                profile.name
            )

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            noisy_profile_measure(get_profile("dedup"), noise=-0.1)

    def test_measure_deterministic_per_seed(self):
        m1 = noisy_profile_measure(get_profile("dedup"), noise=0.1, seed=5)
        m2 = noisy_profile_measure(get_profile("dedup"), noise=0.1, seed=5)
        assert [m1(level) for level in (1, 2, 4)] == [m2(level) for level in (1, 2, 4)]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_dedup_converges_across_seeds(self, seed):
        """Averaging three epochs per level tolerates 3 % throughput noise
        for dedup's clear peak."""
        assert monitor_agrees_with_profile(
            get_profile("dedup"), noise=0.03, seed=seed, samples_per_level=3
        )


class TestMonitorResult:
    def test_mean_throughput(self):
        monitor = OnlineParallelismMonitor(samples_per_level=2)
        result = monitor.calibrate(lambda level: float(level))
        assert result.mean_throughput(1) == pytest.approx(1.0)
        assert isinstance(result, MonitorResult)

    def test_mean_throughput_missing_level(self):
        monitor = OnlineParallelismMonitor(samples_per_level=1)
        result = monitor.calibrate(lambda level: get_profile("freqmine").speedup(level))
        with pytest.raises(ValueError):
            result.mean_throughput(16)  # never probed
