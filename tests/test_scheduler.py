"""Tests for the multi-burst sprint scheduler."""

import pytest

from repro.cmp.workloads import get_profile
from repro.core.scheduler import Burst, SprintScheduler


@pytest.fixture()
def scheduler():
    return SprintScheduler()


def burst(name, arrival, work):
    return Burst(workload=get_profile(name), arrival_s=arrival, work_s=work)


class TestBurstValidation:
    def test_negative_arrival(self):
        with pytest.raises(ValueError):
            burst("dedup", -1.0, 1.0)

    def test_zero_work(self):
        with pytest.raises(ValueError):
            burst("dedup", 0.0, 0.0)

    def test_unknown_scheme(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.run([burst("dedup", 0, 1)], scheme="warp")


class TestSingleBurst:
    def test_non_sprinting_runs_at_unit_speed(self, scheduler):
        result = scheduler.run([burst("dedup", 0.0, 2.0)], "non_sprinting")
        (s,) = result.sprints
        assert s.level == 1
        assert s.end_s == pytest.approx(2.0)
        assert s.fell_back_to_nominal

    def test_noc_sprint_accelerates(self, scheduler):
        result = scheduler.run([burst("dedup", 0.0, 2.0)], "noc_sprinting")
        (s,) = result.sprints
        assert s.level == 4
        # 2 s of work at 3.6x speedup, inside the thermal budget
        assert s.end_s == pytest.approx(2.0 * get_profile("dedup").scaling[4], rel=1e-6)
        assert not s.fell_back_to_nominal

    def test_full_sprint_budget_exhaustion(self, scheduler):
        """A long burst at full sprint burns the ~1 s budget and limps home
        at nominal speed."""
        result = scheduler.run([burst("blackscholes", 0.0, 20.0)], "full_sprinting")
        (s,) = result.sprints
        assert s.level == 16
        assert s.sprint_seconds == pytest.approx(1.0, abs=0.1)
        assert s.fell_back_to_nominal
        # total time = sprint + leftover at 1x
        done = s.sprint_seconds / get_profile("blackscholes").scaling[16]
        assert s.nominal_seconds == pytest.approx(20.0 - done, rel=1e-6)

    def test_level_two_unconstrained(self, scheduler):
        """Level-2 sprint power is below sustainable TDP: never falls back."""
        result = scheduler.run([burst("canneal", 0.0, 50.0)], "noc_sprinting")
        (s,) = result.sprints
        assert s.level == 2
        assert not s.fell_back_to_nominal


class TestSequences:
    def test_fcfs_ordering(self, scheduler):
        result = scheduler.run(
            [burst("dedup", 5.0, 1.0), burst("canneal", 0.0, 1.0)], "noc_sprinting"
        )
        assert [s.burst.workload.name for s in result.sprints] == ["canneal", "dedup"]
        assert result.sprints[1].start_s >= 5.0

    def test_back_to_back_bursts_share_budget(self, scheduler):
        """Two long full sprints in a row: the second starts with a drained
        budget and gets (almost) no sprinting."""
        bursts = [burst("blackscholes", 0.0, 20.0), burst("bodytrack", 0.0, 20.0)]
        result = scheduler.run(bursts, "full_sprinting")
        first, second = result.sprints
        assert first.sprint_seconds > 0.5
        # the first burst's nominal tail gives some re-solidification time,
        # but far from a full budget
        assert second.sprint_seconds < first.sprint_seconds

    def test_idle_gap_refills_budget(self, scheduler):
        """A long gap between bursts re-solidifies the PCM, so the second
        burst sprints as long as the first."""
        bursts = [burst("blackscholes", 0.0, 2.0), burst("blackscholes", 100.0, 2.0)]
        result = scheduler.run(bursts, "full_sprinting")
        first, second = result.sprints
        assert second.sprint_seconds == pytest.approx(first.sprint_seconds, rel=0.05)

    def test_makespan_and_totals(self, scheduler):
        bursts = [burst("dedup", 0.0, 1.0), burst("vips", 1.0, 1.0)]
        result = scheduler.run(bursts, "noc_sprinting")
        assert result.makespan_s == max(s.end_s for s in result.sprints)
        assert result.total_completion_s == sum(
            s.completion_time_s for s in result.sprints
        )

    def test_empty_schedule(self, scheduler):
        result = scheduler.run([], "noc_sprinting")
        assert result.makespan_s == 0.0
        assert result.fallback_count == 0


class TestSchemeComparison:
    def test_noc_sprinting_wins_interactive_mix(self, scheduler):
        """An interactive mix of medium bursts: NoC-sprinting finishes
        sooner than both baselines -- faster than non-sprinting, and it
        outlasts full-sprinting's thermal budget."""
        bursts = [
            burst("dedup", 0.0, 3.0),
            burst("canneal", 1.0, 3.0),
            burst("vips", 2.0, 3.0),
            burst("streamcluster", 3.0, 3.0),
        ]
        results = scheduler.compare_schemes(bursts)
        noc = results["noc_sprinting"].total_completion_s
        full = results["full_sprinting"].total_completion_s
        non = results["non_sprinting"].total_completion_s
        assert noc < full
        assert noc < non

    def test_all_schemes_present(self, scheduler):
        results = scheduler.compare_schemes([burst("dedup", 0.0, 1.0)])
        assert set(results) == {"non_sprinting", "full_sprinting", "noc_sprinting"}
