"""Tests for the DSENT-substitute router power model."""

import pytest

from repro.config import NoCConfig
from repro.noc.activity import RouterActivity
from repro.power.router_power import PowerBreakdown, RouterPowerModel
from repro.power.technology import FIG2_OPERATING_POINTS

FIG2_CFG = NoCConfig(vcs_per_port=2)  # the paper's Figure 2 router


class TestPowerBreakdown:
    def test_total_and_fraction(self):
        b = PowerBreakdown(dynamic=3.0, leakage=1.0)
        assert b.total == 4.0
        assert b.leakage_fraction == 0.25

    def test_add_and_scale(self):
        b = PowerBreakdown(1.0, 2.0) + PowerBreakdown(3.0, 4.0)
        assert (b.dynamic, b.leakage) == (4.0, 6.0)
        assert b.scaled(0.5).total == 5.0

    def test_zero_total(self):
        assert PowerBreakdown(0.0, 0.0).leakage_fraction == 0.0


class TestAnalyticBreakdown:
    def test_mw_scale_at_reference(self):
        model = RouterPowerModel(FIG2_CFG)
        b = model.breakdown_at_injection(0.4)
        assert 10e-3 < b.total < 100e-3  # tens of mW, DSENT scale

    def test_fig2_leakage_share_grows(self):
        """The paper's Figure 2: leakage ratio rises as V/f scale down and
        can exceed dynamic power."""
        shares = []
        for vdd, freq in FIG2_OPERATING_POINTS:
            model = RouterPowerModel(FIG2_CFG, vdd=vdd, frequency_hz=freq)
            shares.append(model.breakdown_at_injection(0.4).leakage_fraction)
        assert shares == sorted(shares)
        assert shares[-1] > 0.5  # leakage exceeds dynamic at (0.75 V, 1 GHz)

    def test_dynamic_grows_with_injection(self):
        model = RouterPowerModel(FIG2_CFG)
        low = model.breakdown_at_injection(0.1)
        high = model.breakdown_at_injection(0.8)
        assert high.dynamic > low.dynamic
        assert high.leakage == low.leakage

    def test_idle_router_still_burns_clock_and_leakage(self):
        b = RouterPowerModel(FIG2_CFG).breakdown_at_injection(0.0)
        assert b.dynamic > 0  # clock tree
        assert b.leakage > 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RouterPowerModel(FIG2_CFG).breakdown_at_injection(-0.1)

    def test_more_vcs_more_power(self):
        two = RouterPowerModel(NoCConfig(vcs_per_port=2)).breakdown_at_injection(0.4)
        four = RouterPowerModel(NoCConfig(vcs_per_port=4)).breakdown_at_injection(0.4)
        assert four.total > two.total
        assert four.leakage > two.leakage


class TestActivityBased:
    def test_matches_analytic_at_same_rate(self):
        """Feeding the analytic event mix through the activity path must
        give the same answer."""
        model = RouterPowerModel(FIG2_CFG)
        cycles = 1000
        flits = 400  # 0.4 flits/cycle
        activity = RouterActivity(
            buffer_writes=flits,
            buffer_reads=flits,
            crossbar_traversals=flits,
            link_traversals=flits,
            vc_allocations=0,
            switch_arbitrations=flits,
            cycles_powered=cycles,
        )
        from_activity = model.power_from_activity(activity, cycles)
        analytic = model.breakdown_at_injection(0.4)
        assert from_activity.total == pytest.approx(analytic.total, rel=0.01)

    def test_gated_router_consumes_nothing(self):
        model = RouterPowerModel(FIG2_CFG)
        b = model.power_from_activity(RouterActivity(), 1000)
        assert b.total == 0.0

    def test_partial_powering_scales_leakage(self):
        model = RouterPowerModel(FIG2_CFG)
        half = model.power_from_activity(RouterActivity(cycles_powered=500), 1000)
        full = model.power_from_activity(RouterActivity(cycles_powered=1000), 1000)
        assert half.leakage == pytest.approx(full.leakage / 2)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RouterPowerModel(FIG2_CFG).power_from_activity(RouterActivity(), 0)


class TestWakeupEnergy:
    def test_positive_and_sane(self):
        model = RouterPowerModel(FIG2_CFG)
        e = model.wakeup_energy()
        assert e > 0
        # should be tens of cycles of leakage, not seconds
        assert e < model.leakage_power() * 1000 / model.frequency_hz
