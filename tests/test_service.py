"""The experiment service: wire format, singleflight claims, HTTP API.

Three layers under test:

1. the **versioned wire codec** -- ``from_wire(to_wire(spec))`` is the
   identity, cache keys survive a JSON round trip bit-for-bit, and the
   golden corpus in ``tests/data/spec_v1.json`` pins the v1 schema so
   accidental canonicalization drift fails loudly;
2. the **singleflight primitive** -- :meth:`ResultCache.get_or_begin`
   hands the claim for each key to exactly one caller under thread and
   cross-instance (claim-file) contention;
3. the **HTTP front door** -- a real server in a thread: batch submit,
   coalescing (N concurrent identical specs -> one simulation), rate
   limiting (429), budget refusal (402), malformed wire payloads (400),
   and ledger-backed retrieval after the cache is lost.
"""

import json
import os
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.config import NoCConfig
from repro.core.system import EvaluationReport
from repro.core.topological import SprintTopology
from repro.exec.cache import ResultCache
from repro.noc.spec import (
    FaultEvent,
    FaultSchedule,
    SimulationSpec,
    TrafficSpec,
    WireFormatError,
    spec_from_wire,
    spec_to_wire,
)
from repro.power.chip_power import ChipPowerReport
from repro.service import (
    BudgetExhausted,
    ClientAccounts,
    ExperimentServer,
    ExperimentService,
    RateLimited,
    error_payload,
)
from repro.telemetry.ledger import Ledger

CFG = NoCConfig()
DATA_DIR = Path(__file__).parent / "data"


def make_spec(level=4, rate=0.05, pattern="uniform", seed=0,
              warmup=50, measure=200, drain=1000, **kwargs):
    topo = SprintTopology.for_level(4, 4, level)
    traffic = TrafficSpec(tuple(topo.active_nodes), rate,
                          CFG.packet_length_flits, pattern=pattern, seed=seed)
    return SimulationSpec(topo, traffic, CFG, warmup_cycles=warmup,
                          measure_cycles=measure, drain_cycles=drain,
                          **kwargs)


def spec_corpus():
    """A representative slice of every shape the spec tree can take."""
    return [
        make_spec(),
        make_spec(level=6, rate=0.25, pattern="tornado", seed=3),
        make_spec(pattern="hotspot"),
        make_spec(backend="vectorized"),
        make_spec(backend="auto"),
        make_spec(faults=FaultSchedule(events=(
            FaultEvent(cycle=60, kind="router", node=5),
            FaultEvent(cycle=80, kind="link", link=(1, 2), duration=40),
        ))),
    ]


# ----------------------------------------------------------------------
# 1. the wire codec
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip_is_identity(self):
        for spec in spec_corpus():
            assert spec_from_wire(spec_to_wire(spec)) == spec

    def test_cache_key_survives_json_round_trip(self):
        for spec in spec_corpus():
            blob = json.dumps(spec_to_wire(spec), sort_keys=True)
            revived = spec_from_wire(json.loads(blob))
            assert revived.cache_key() == spec.cache_key()

    def test_method_and_function_forms_agree(self):
        spec = make_spec()
        assert spec.to_wire() == spec_to_wire(spec)
        assert SimulationSpec.from_wire(spec.to_wire()) == spec

    def test_golden_corpus_pins_v1_schema(self):
        """Decoding the committed corpus must reproduce its cache keys.

        A failure here means the canonicalization drifted: existing
        cache entries and ledger records would silently stop resolving.
        Bump WIRE_VERSION, never regenerate this file in place.
        """
        doc = json.loads((DATA_DIR / "spec_v1.json").read_text())
        assert doc["cases"], "golden corpus is empty"
        for case in doc["cases"]:
            spec = spec_from_wire(case["wire"])
            assert spec.cache_key() == case["cache_key"]
            # re-encoding reproduces the committed document bit-for-bit
            assert (json.dumps(spec_to_wire(spec), sort_keys=True)
                    == json.dumps(case["wire"], sort_keys=True))

    @pytest.mark.parametrize("payload,code", [
        ("not a dict", "schema"),
        ({"v": 99, "spec": {}}, "version"),
        ({"spec": {}}, "version"),
        ({"v": 1, "kind": "evaluation_report", "spec": {}}, "schema"),
        ({"v": 1, "spec": []}, "schema"),
        ({"v": 1, "spec": {"__class__": "Rogue"}}, "schema"),
    ])
    def test_malformed_payloads_fail_loudly(self, payload, code):
        with pytest.raises(WireFormatError) as exc:
            spec_from_wire(payload)
        assert exc.value.code == code

    def test_unknown_field_is_schema_drift_not_a_silent_drop(self):
        wire = make_spec().to_wire()
        wire["spec"]["frobnication"] = 1
        with pytest.raises(WireFormatError, match="frobnication"):
            spec_from_wire(wire)

    def test_invalid_values_surface_as_value_errors(self):
        wire = make_spec().to_wire()
        wire["spec"]["measure_cycles"] = 0
        with pytest.raises(WireFormatError) as exc:
            spec_from_wire(wire)
        assert exc.value.code == "value"

    def test_report_to_wire_is_json_ready(self):
        report = EvaluationReport(
            benchmark="dedup", scheme="noc_sprinting", level=4,
            relative_time=0.5, speedup=2.0, core_power_w=40.0,
            chip_power=ChipPowerReport(cores=30.0, l2=4.0,
                                       memory_controllers=3.0, noc=2.0,
                                       others=1.0),
        )
        doc = json.loads(json.dumps(report.to_wire()))
        assert doc["v"] == 1 and doc["kind"] == "evaluation_report"
        assert doc["report"]["chip_power"]["total"] == pytest.approx(40.0)
        assert doc["report"]["network"] is None


# ----------------------------------------------------------------------
# 2. the singleflight primitive
# ----------------------------------------------------------------------
class TestGetOrBegin:
    def test_hit_returns_value_without_claim(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cache.put("k", 42)
        value, claim = cache.get_or_begin("k")
        assert value == 42 and claim is None

    def test_miss_wins_claim_and_blocks_rivals(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        value, claim = cache.get_or_begin("k")
        assert value is None and claim is not None
        assert cache.has_claim("k")
        again = cache.get_or_begin("k")
        assert again == (None, None)
        claim.complete(7)
        assert not cache.has_claim("k")
        assert cache.get_or_begin("k") == (7, None)

    def test_abandon_lets_another_claimant_retry(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        _, claim = cache.get_or_begin("k")
        claim.abandon()
        value, retry = cache.get_or_begin("k")
        assert value is None and retry is not None
        retry.release()

    def test_memory_only_cache_arbitrates_across_threads(self):
        cache = ResultCache()
        _, claim = cache.get_or_begin("k")
        assert claim is not None
        assert cache.get_or_begin("k") == (None, None)
        claim.complete("done")
        assert cache.get_or_begin("k") == ("done", None)

    def test_claim_file_arbitrates_across_instances(self, tmp_path):
        """Two ResultCache objects on one directory model two processes."""
        a = ResultCache(directory=str(tmp_path))
        b = ResultCache(directory=str(tmp_path))
        _, claim = a.get_or_begin("k")
        assert claim is not None
        assert b.get_or_begin("k") == (None, None)
        claim.complete(9)
        assert b.get_or_begin("k") == (9, None)

    def test_stale_claim_is_taken_over(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        _, claim = cache.get_or_begin("k")
        assert claim is not None
        # model a crashed holder: age the claim file past the ttl
        path = cache._claim_path("k")
        old = os.path.getmtime(path) - 10_000
        os.utime(path, (old, old))
        cache._claims.discard("k")  # the "crash" took the memory state too
        value, takeover = cache.get_or_begin("k", claim_ttl_s=60.0)
        assert value is None and takeover is not None
        takeover.complete(1)
        assert cache.get("k") == 1

    def test_hammer_exactly_one_winner_per_key(self, tmp_path):
        """The race the primitive exists for: many threads, two instances,
        one directory -- every key must get exactly one claim."""
        caches = [ResultCache(directory=str(tmp_path)) for _ in range(2)]
        keys = [f"key{i}" for i in range(8)]
        wins = []
        wins_lock = threading.Lock()
        barrier = threading.Barrier(16)

        def contend(cache, worker):
            barrier.wait()
            for key in keys:
                value, claim = cache.get_or_begin(key)
                if claim is not None:
                    with wins_lock:
                        wins.append((key, worker))
                    claim.complete(f"{key}-by-{worker}")

        threads = [
            threading.Thread(target=contend, args=(caches[i % 2], i))
            for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        won_keys = [key for key, _ in wins]
        assert sorted(won_keys) == sorted(set(won_keys)), (
            f"duplicate claim winners: {wins}")
        # every claim completed and released
        for cache in caches:
            for key in keys:
                assert not cache.has_claim(key)


# ----------------------------------------------------------------------
# 3. the HTTP front door
# ----------------------------------------------------------------------
def http_json(url, data=None, headers=None, timeout=120.0):
    request = urllib.request.Request(url, data=data, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.getcode(), dict(response.headers), json.load(response)
    except urllib.error.HTTPError as err:
        try:
            body = json.loads(err.read().decode("utf-8"))
        finally:
            err.close()
        return err.code, dict(err.headers), body


@pytest.fixture
def server(tmp_path):
    service = ExperimentService(
        cache=ResultCache(directory=str(tmp_path / "cache")), workers=1,
        ledger=Ledger(directory=str(tmp_path / "ledger")),
    )
    srv = ExperimentServer(service).start()
    yield srv
    srv.stop()


class TestHttpApi:
    def test_evaluate_end_to_end_matches_in_process(self, server):
        spec = make_spec()
        status, _, doc = http_json(
            server.url + "/v1/evaluate",
            data=json.dumps(spec_to_wire(spec)).encode())
        assert status == 200 and doc["status"] == "done"
        from repro.noc.sim import run_simulation

        expected = run_simulation(spec)
        assert doc["result"] == expected.to_wire()
        assert doc["key"] == spec.cache_key()

    def test_batch_submit_and_ticket_progress(self, server):
        specs = [make_spec(seed=1), make_spec(seed=2), make_spec(seed=1)]
        status, _, ticket = http_json(
            server.url + "/v1/sweeps",
            data=json.dumps({"specs": [s.to_wire() for s in specs]}).encode())
        assert status == 202
        assert ticket["total"] == 3
        assert ticket["new"] == 2          # unique specs
        assert ticket["coalesced"] == 1    # the in-batch duplicate
        assert ticket["keys"][0] == ticket["keys"][2]
        # poll the ticket to completion
        server.service.wait(ticket["keys"][0], timeout_s=120)
        server.service.wait(ticket["keys"][1], timeout_s=120)
        status, _, doc = http_json(
            server.url + "/v1/sweeps/" + ticket["sweep_id"])
        assert status == 200 and doc["complete"] and doc["done"] == 2
        assert set(doc["results"]) == set(ticket["keys"])

    def test_concurrent_identical_specs_simulate_once(self, server):
        spec = make_spec(seed=77, measure=400)
        body = json.dumps(spec_to_wire(spec)).encode()
        outcomes = []
        lock = threading.Lock()

        def submit():
            status, _, doc = http_json(server.url + "/v1/evaluate", data=body)
            with lock:
                outcomes.append((status, json.dumps(doc["result"],
                                                    sort_keys=True)))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in outcomes)
        assert len({blob for _, blob in outcomes}) == 1, (
            "coalesced requesters saw different results")
        assert server.service.counter_value("service_simulations_total") == 1
        assert server.service.counter_value("service_coalesced_total") == 5

    def test_resubmission_is_served_from_cache(self, server):
        spec = make_spec(seed=5)
        body = json.dumps(spec_to_wire(spec)).encode()
        http_json(server.url + "/v1/evaluate", data=body)
        status, _, doc = http_json(server.url + "/v1/evaluate", data=body)
        assert status == 200 and doc["cached"] is True
        assert server.service.counter_value("service_simulations_total") == 1
        status, _, doc = http_json(
            server.url + "/v1/results/" + spec.cache_key())
        assert status == 200 and doc["source"] == "cache"

    def test_unknown_result_key_is_404(self, server):
        status, _, doc = http_json(server.url + "/v1/results/" + "0" * 64)
        assert status == 404 and doc["error"]["type"] == "not_found"

    def test_malformed_wire_payloads_are_400(self, server):
        cases = [
            (b"this is not json", "bad_json"),
            (json.dumps({"v": 99, "spec": {}}).encode(), "wire_format"),
            (json.dumps({"v": 1, "spec": {"__class__": "Rogue"}}).encode(),
             "wire_format"),
        ]
        for body, expected_type in cases:
            status, _, doc = http_json(server.url + "/v1/evaluate", data=body)
            assert status == 400, body
            assert doc["error"]["type"] == expected_type
            # every refusal carries the full structured shape
            assert {"type", "message", "missing",
                    "alternatives"} <= set(doc["error"])

    def test_rate_limit_answers_429_with_retry_after(self, tmp_path):
        service = ExperimentService(
            cache=ResultCache(),
            accounts=ClientAccounts(rate_per_s=0.0, burst=2.0),
        )
        srv = ExperimentServer(service).start()
        try:
            body = json.dumps({"spec": spec_to_wire(make_spec()),
                               "wait_s": 0}).encode()
            headers = {"X-Repro-Client": "greedy"}
            first, _, _ = http_json(srv.url + "/v1/evaluate", data=body,
                                    headers=headers)
            second, _, _ = http_json(srv.url + "/v1/evaluate", data=body,
                                     headers=headers)
            status, resp_headers, doc = http_json(
                srv.url + "/v1/evaluate", data=body, headers=headers)
            assert first in (200, 202) and second in (200, 202)
            assert status == 429
            assert doc["error"]["type"] == "rate_limited"
            assert float(resp_headers["Retry-After"]) >= 1
            assert service.counter_value("service_rate_limited_total") >= 1
        finally:
            srv.stop()

    def test_budget_exhaustion_answers_402(self, tmp_path):
        service = ExperimentService(
            cache=ResultCache(),
            accounts=ClientAccounts(budget_simulated_s=1e-12),
        )
        srv = ExperimentServer(service).start()
        try:
            headers = {"X-Repro-Client": "spender"}
            body = json.dumps(spec_to_wire(make_spec(seed=8))).encode()
            status, _, _ = http_json(srv.url + "/v1/evaluate", data=body,
                                     headers=headers)
            assert status == 200  # first run is admitted (post-paid)
            assert service.accounts.spent_s("spender") > 0
            body = json.dumps(spec_to_wire(make_spec(seed=9))).encode()
            status, _, doc = http_json(srv.url + "/v1/evaluate", data=body,
                                       headers=headers)
            assert status == 402
            assert doc["error"]["type"] == "budget_exhausted"
            assert doc["error"]["spent_s"] > 0
            # other clients are unaffected
            status, _, _ = http_json(srv.url + "/v1/evaluate", data=body,
                                     headers={"X-Repro-Client": "frugal"})
            assert status == 200
        finally:
            srv.stop()

    def test_ledger_backed_retrieval_after_cache_loss(self, tmp_path):
        """Results outlive the cache: a restarted service with an empty
        cache still answers from the run ledger's headline metrics."""
        ledger_dir = str(tmp_path / "ledger")
        spec = make_spec(seed=13)
        key = spec.cache_key()
        first = ExperimentService(
            cache=ResultCache(directory=str(tmp_path / "cache1")),
            ledger=Ledger(directory=ledger_dir),
        )
        first.submit([spec.to_wire()], client="t")
        assert first.wait(key, timeout_s=120) is not None
        first.close()
        # "restart" with a fresh, empty cache but the same ledger
        reborn = ExperimentService(
            cache=ResultCache(directory=str(tmp_path / "cache2")),
            ledger=Ledger(directory=ledger_dir),
        )
        srv = ExperimentServer(reborn).start()
        try:
            status, _, doc = http_json(srv.url + "/v1/results/" + key)
            assert status == 200
            assert doc["source"] == "ledger"
            assert "avg_latency" in doc["headline"]
            status, _, run_doc = http_json(
                srv.url + "/v1/runs/" + doc["run_id"][:12])
            assert status == 200
            assert run_doc["run"]["kind"] == "service"
            assert key in run_doc["run"]["points"]
        finally:
            srv.stop()

    def test_metrics_exposition_carries_service_series(self, server):
        spec = make_spec(seed=21)
        http_json(server.url + "/v1/evaluate",
                  data=json.dumps(spec_to_wire(spec)).encode())
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=30) as response:
            text = response.read().decode()
        for name in ("service_requests_total", "service_specs_total",
                     "service_simulations_total", "service_inflight",
                     "service_budget_spent_seconds", "result_cache_hits"):
            assert name in text, f"{name} missing from /metrics"

    def test_capability_refusal_is_a_structured_400(self, server):
        """An impossible spec is refused at the front door with the same
        payload fields BackendCapabilityError carries in-process."""
        from tests.test_backends import scratch_backend

        faulty = make_spec(
            backend="limited",
            faults=FaultSchedule(events=(
                FaultEvent(cycle=10, kind="router", node=5),)),
        )
        with scratch_backend():  # registers "limited" without CAP_FAULTS
            status, _, doc = http_json(
                server.url + "/v1/evaluate",
                data=json.dumps(spec_to_wire(faulty)).encode())
        assert status == 400
        assert doc["error"]["type"] == "backend_capability"
        assert "faults" in doc["error"]["missing"]
        assert doc["error"]["alternatives"], "no alternative backends offered"
        assert doc["error"]["backend"] == "limited"

    def test_unsupported_method_and_unknown_route(self, server):
        status, _, doc = http_json(server.url + "/v1/nonsense",
                                   data=b"{}")
        assert status == 404
        request = urllib.request.Request(server.url + "/v1/evaluate",
                                         data=b"{}", method="PUT")
        try:
            with urllib.request.urlopen(request, timeout=30):
                raise AssertionError("PUT should be refused")
        except urllib.error.HTTPError as err:
            assert err.code == 405
            err.close()


# ----------------------------------------------------------------------
# the error payload contract + CLI parity path
# ----------------------------------------------------------------------
class TestErrorPayloadShape:
    def test_capability_error_payload_matches_in_process_fields(self):
        from repro.noc.backends import BackendCapabilityError

        err = BackendCapabilityError(
            "limited", frozenset({"faults"}), alternatives=("reference",))
        status, body = error_payload(err)
        assert status == 400
        assert body["type"] == "backend_capability"
        assert body["missing"] == ["faults"]
        assert body["alternatives"] == ["reference"]
        assert body["backend"] == "limited"

    def test_every_refusal_type_has_the_same_shape(self):
        for err in (WireFormatError("x"), RateLimited("c", 1.0),
                    BudgetExhausted("c", 2.0, 1.0), ValueError("v"),
                    RuntimeError("boom")):
            _, body = error_payload(err)
            assert {"type", "message", "missing", "alternatives"} <= set(body)


class TestLocalParity:
    def test_submit_local_matches_http(self, tmp_path, server, capsys):
        """`repro submit --local` and the HTTP path agree bit-for-bit."""
        from repro.cli import main

        spec = make_spec(seed=33)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_to_wire(spec)))
        status, _, http_doc = http_json(
            server.url + "/v1/evaluate",
            data=json.dumps(spec_to_wire(spec)).encode())
        assert status == 200
        code = main(["submit", str(spec_file), "--local",
                     "--cache-dir", str(tmp_path / "local-cache")])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        key = spec.cache_key()
        assert out["keys"] == [key]
        assert out["results"][key] == http_doc["result"]
