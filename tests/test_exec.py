"""Tests for the sweep-execution engine: specs, cache, parallel runner."""

import dataclasses
import pickle

import pytest

from repro.config import NoCConfig
from repro.core.system import NoCSprintingSystem
from repro.core.topological import SprintTopology
from repro.exec import ResultCache, SweepRunner
from repro.noc.sim import (
    run_simulation,
    simulate,
    zero_load_cache,
    zero_load_latency,
)
from repro.noc.spec import SimulationSpec, TrafficSpec, stable_key
from repro.noc.traffic import TrafficGenerator

CFG = NoCConfig()


def small_spec(level=4, rate=0.1, seed=0, **overrides) -> SimulationSpec:
    topo = SprintTopology.for_level(4, 4, level)
    kwargs = dict(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG,
        routing="cdor" if level < 16 else "xy",
        warmup_cycles=100,
        measure_cycles=300,
        drain_cycles=600,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def result_fields(result) -> dict:
    """Every scalar field of a SimulationResult (activity compared apart)."""
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "activity"
    }


class TestSimulationSpec:
    def test_hashable_and_equal(self):
        assert small_spec() == small_spec()
        assert hash(small_spec()) == hash(small_spec())
        assert small_spec() != small_spec(rate=0.2)

    def test_pickle_round_trip(self):
        spec = small_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.cache_key() == spec.cache_key()

    def test_cache_key_changes_with_any_noc_config_field(self):
        base = small_spec()
        changed = {
            "mesh_width": 5, "mesh_height": 5, "router_pipeline_stages": 4,
            "vcs_per_port": 2, "buffers_per_vc": 8, "packet_length_flits": 3,
            "flit_length_bytes": 32,
        }
        for field, value in changed.items():
            cfg = dataclasses.replace(CFG, **{field: value})
            other = dataclasses.replace(base, config=cfg)
            assert other.cache_key() != base.cache_key(), field

    def test_cache_key_changes_with_run_parameters(self):
        base = small_spec()
        for variant in (
            small_spec(rate=0.11),
            small_spec(seed=1),
            small_spec(level=8),
            small_spec(routing="xy"),
            small_spec(measure_cycles=301),
            small_spec(warmup_cycles=101),
            small_spec(drain_cycles=601),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_cache_key_is_stable_content_hash(self):
        # equal specs built independently share a key (content addressed)
        assert small_spec().cache_key() == small_spec().cache_key()
        assert len(small_spec().cache_key()) == 64  # sha256 hex

    def test_dark_endpoint_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(ValueError):
            SimulationSpec(topo, TrafficSpec((0, 15), 0.1, 5))

    def test_traffic_spec_builds_identical_generator(self):
        spec = small_spec()
        built = spec.traffic.build()
        direct = TrafficGenerator(
            list(spec.traffic.endpoints), 0.1, CFG.packet_length_flits,
            "uniform", seed=0,
        )
        for cycle in range(50):
            a = built.packets_for_cycle(cycle, measured=False)
            b = direct.packets_for_cycle(cycle, measured=False)
            assert [(p.source, p.destination) for p in a] == [
                (p.source, p.destination) for p in b
            ]

    def test_run_simulation_accepts_spec(self):
        spec = small_spec()
        assert result_fields(run_simulation(spec)) == result_fields(simulate(spec))

    def test_stable_key_rejects_unhashable_junk(self):
        with pytest.raises(TypeError):
            stable_key(object())


class TestResultCache:
    def test_memory_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.stores == 1
        assert stats.hit_rate == 0.5

    def test_disk_round_trip_across_instances(self, tmp_path):
        first = ResultCache(directory=str(tmp_path))
        first.put("key", {"value": 7})
        fresh = ResultCache(directory=str(tmp_path))  # a "new process"
        assert fresh.get("key") == {"value": 7}
        assert fresh.stats().disk_hits == 1
        assert "key" in fresh

    def test_clear_keeps_disk_layer(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cache.put("key", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("key") == 1  # reloaded from disk


class TestSweepRunner:
    def test_results_in_input_order(self):
        specs = [small_spec(rate=r) for r in (0.05, 0.2, 0.1)]
        report = SweepRunner().run(specs)
        for spec, result in zip(specs, report.results):
            assert result.offered_flits_per_cycle == spec.traffic.injection_rate

    def test_parallel_matches_serial_bit_identical(self):
        """Acceptance: workers>1 must equal workers=1 on the Fig. 11 grid."""
        from benchmarks.bench_fig11_synthetic import full_specs, noc_spec

        grid = []
        for rate in (0.05, 0.25):
            grid.append(noc_spec(4, rate))
            grid.extend(full_specs(4, rate))
        serial = SweepRunner(workers=1).run(grid)
        parallel = SweepRunner(workers=2).run(grid)
        for a, b in zip(serial.results, parallel.results):
            assert result_fields(a) == result_fields(b)
            assert {n: vars(r) for n, r in a.activity.routers.items()} == {
                n: vars(r) for n, r in b.activity.routers.items()
            }

    def test_repeat_sweep_is_all_cache_hits(self):
        specs = [small_spec(rate=r) for r in (0.05, 0.1)]
        runner = SweepRunner(cache=ResultCache())
        first = runner.run(specs)
        second = runner.run(specs)
        assert first.cache_hits == 0 and first.simulated == 2
        assert second.cache_hits == 2 and second.simulated == 0
        assert second.hit_rate == 1.0
        assert all(point.cached for point in second.points)
        assert result_fields(first.results[0]) == result_fields(second.results[0])

    def test_duplicate_specs_simulated_once(self):
        spec = small_spec()
        report = SweepRunner().run([spec, spec, spec])
        assert report.simulated == 1
        assert report.deduplicated == 2
        assert len({id(r) for r in report.results}) == 1

    def test_changed_config_field_misses_cache(self):
        runner = SweepRunner(cache=ResultCache())
        runner.run([small_spec()])
        changed = dataclasses.replace(
            small_spec(), config=dataclasses.replace(CFG, buffers_per_vc=8)
        )
        report = runner.run([changed])
        assert report.cache_hits == 0
        assert report.simulated == 1

    def test_summary_mentions_cache_and_timing(self):
        runner = SweepRunner(cache=ResultCache())
        runner.run([small_spec()])
        summary = runner.run([small_spec()]).summary()
        assert "100% hit rate" in summary
        assert "1 points" in summary

    def test_progress_callback_sees_every_point(self):
        seen = []
        runner = SweepRunner(progress=lambda done, total, point: seen.append((done, total)))
        runner.run([small_spec(rate=r) for r in (0.05, 0.1)])
        assert seen == [(1, 2), (2, 2)]

    def test_disk_cache_spans_runner_instances(self, tmp_path):
        spec = small_spec()
        SweepRunner(cache=ResultCache(directory=str(tmp_path))).run([spec])
        report = SweepRunner(cache=ResultCache(directory=str(tmp_path))).run([spec])
        assert report.cache_hits == 1 and report.simulated == 0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)


class TestZeroLoadMemo:
    def test_memoized_per_topology_config_routing(self):
        topo = SprintTopology.for_level(4, 4, 6)
        before = zero_load_cache().stats()
        first = zero_load_latency(topo, CFG, "cdor")
        second = zero_load_latency(topo, CFG, "cdor")
        after = zero_load_cache().stats()
        assert first == second
        assert after.hits > before.hits

    def test_distinct_configs_get_distinct_entries(self):
        topo = SprintTopology.for_level(4, 4, 6)
        deeper = dataclasses.replace(CFG, router_pipeline_stages=7)
        assert zero_load_latency(topo, deeper) > zero_load_latency(topo, CFG)


class TestSystemIntegration:
    def test_evaluate_network_served_from_cache_on_repeat(self):
        system = NoCSprintingSystem()
        first = system.evaluate("dedup", "noc_sprinting", simulate_network=True,
                                warmup_cycles=100, measure_cycles=300).network
        stores = system.cache.stats().stores
        second = system.evaluate("dedup", "noc_sprinting", simulate_network=True,
                                 warmup_cycles=100, measure_cycles=300).network
        assert system.cache.stats().stores == stores  # nothing re-simulated
        assert result_fields(first.sim) == result_fields(second.sim)

    def test_delegates_agree_with_evaluate(self):
        system = NoCSprintingSystem()
        report = system.evaluate("dedup", "noc_sprinting")
        with pytest.warns(DeprecationWarning):
            assert system.speedup("dedup", "noc_sprinting") == report.speedup
        with pytest.warns(DeprecationWarning):
            assert system.core_power("dedup", "noc_sprinting") == report.core_power_w
        with pytest.warns(DeprecationWarning):
            assert system.execution_time("dedup", "noc_sprinting") == report.relative_time

    def test_evaluation_report_is_workload_evaluation(self):
        from repro.core.system import EvaluationReport, WorkloadEvaluation

        assert WorkloadEvaluation is EvaluationReport

    def test_simulation_spec_matches_evaluate_network(self):
        system = NoCSprintingSystem()
        spec = system.simulation_spec("dedup", "noc_sprinting",
                                      warmup_cycles=100, measure_cycles=300)
        via_system = system.evaluate("dedup", "noc_sprinting", simulate_network=True,
                                     warmup_cycles=100, measure_cycles=300).network
        assert result_fields(simulate(spec)) == result_fields(via_system.sim)

    def test_shared_cache_across_systems(self):
        cache = ResultCache()
        a = NoCSprintingSystem(cache=cache)
        b = NoCSprintingSystem(cache=cache)
        a.evaluate("dedup", "noc_sprinting", simulate_network=True,
                   warmup_cycles=100, measure_cycles=300)
        stores = cache.stats().stores
        b.evaluate("dedup", "noc_sprinting", simulate_network=True,
                   warmup_cycles=100, measure_cycles=300)
        assert cache.stats().stores == stores
