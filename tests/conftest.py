"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    Sweeps record to ``.repro/ledger`` by default; without this every
    test that touches :class:`~repro.exec.SweepRunner` would leave run
    records in the checkout.  Tests that need a specific ledger location
    still pass ``Ledger(directory=...)`` or set ``REPRO_LEDGER_DIR``
    themselves (monkeypatch overrides win over this fixture).
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
