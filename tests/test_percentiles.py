"""Tests for latency percentiles (util.stats.percentile + sim fields)."""

import pytest

from repro.util.stats import percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_matches_numpy(self):
        import numpy as np

        data = [4.2, 1.1, 9.9, 3.3, 7.7, 2.2, 8.8]
        for q in (10, 25, 50, 75, 90, 95, 99):
            assert percentile(data, q) == pytest.approx(np.percentile(data, q))


class TestSimulationPercentiles:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.config import NoCConfig
        from repro.core.topological import SprintTopology
        from repro.noc.sim import run_simulation
        from repro.noc.traffic import TrafficGenerator

        cfg = NoCConfig()
        topo = SprintTopology.for_level(4, 4, 16)
        traffic = TrafficGenerator(list(range(16)), 0.3, cfg.packet_length_flits, seed=2)
        return run_simulation(topo, traffic, cfg, routing="xy",
                              warmup_cycles=300, measure_cycles=1500)

    def test_ordering(self, result):
        assert result.p50_latency <= result.avg_latency * 1.2
        assert result.p50_latency <= result.p95_latency <= result.p99_latency
        assert result.p99_latency <= result.max_latency

    def test_p50_near_mean_at_moderate_load(self, result):
        assert result.p50_latency == pytest.approx(result.avg_latency, rel=0.35)

    def test_tail_grows_with_load(self):
        from repro.config import NoCConfig
        from repro.core.topological import SprintTopology
        from repro.noc.sim import run_simulation
        from repro.noc.traffic import TrafficGenerator

        cfg = NoCConfig()
        topo = SprintTopology.for_level(4, 4, 16)

        def run(rate):
            traffic = TrafficGenerator(list(range(16)), rate,
                                       cfg.packet_length_flits, seed=2)
            return run_simulation(topo, traffic, cfg, routing="xy",
                                  warmup_cycles=300, measure_cycles=1200)

        low = run(0.05)
        high = run(0.6)
        # tails disperse faster than means as the network loads up
        assert (high.p99_latency - high.p50_latency) > (
            low.p99_latency - low.p50_latency
        )
