"""Kernel-level tests of the cycle simulator: delivery, ordering, timing,
flow control and wormhole invariants."""

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.flit import Packet
from repro.noc.network import HEAD_VA_DELAY, LINK_DELAY, Network
from repro.noc.routing import PORT_LOCAL, build_routing_table

CFG = NoCConfig()


def make_network(level=16, routing="xy", config=CFG):
    topo = SprintTopology.for_level(4, 4, level)
    table = build_routing_table(topo, routing)
    return Network(topo, table, config), topo


def drive(network, packets, max_cycles=2000):
    """Inject packets at their creation cycles and run until delivered."""
    done = []
    network.on_packet_ejected = done.append
    by_cycle = {}
    for p in packets:
        by_cycle.setdefault(p.created_at, []).append(p)
    while (by_cycle or not network.idle()) and network.cycle < max_cycles:
        for p in by_cycle.pop(network.cycle, ()):
            network.inject(p)
        network.step()
    return done


class TestDelivery:
    def test_single_packet_delivered(self):
        network, _ = make_network()
        p = Packet(pid=0, source=0, destination=15, length=5, created_at=0)
        done = drive(network, [p])
        assert done == [p]
        assert p.ejected_at is not None
        assert p.hops == 6  # Manhattan distance on the full mesh

    def test_zero_load_latency_matches_pipeline(self):
        """Head: 5 cycles per hop stage-accurate; tail trails by length-1."""
        network, _ = make_network()
        p = Packet(pid=0, source=0, destination=3, length=5, created_at=0)
        drive(network, [p])
        hops = 3
        # NI pushes head at cycle 0; VA at +2, SA at +3, arrive next at +5
        # per router; final ejection adds the tail serialization.
        expected_head = 5 * (hops + 1)
        assert p.latency == pytest.approx(expected_head + (p.length - 1), abs=3)

    def test_local_delivery(self):
        network, _ = make_network()
        p = Packet(pid=0, source=5, destination=5, length=5, created_at=0)
        done = drive(network, [p])
        assert done == [p]
        assert p.hops == 0

    def test_all_pairs_delivered_full_mesh(self):
        network, _ = make_network()
        packets = [
            Packet(pid=i * 16 + j, source=i, destination=j, length=5, created_at=(i * 16 + j) * 3)
            for i in range(16)
            for j in range(16)
            if i != j
        ]
        done = drive(network, packets, max_cycles=30000)
        assert len(done) == len(packets)

    def test_all_pairs_delivered_cdor_region(self):
        for level in (2, 4, 7, 8, 12):
            network, topo = make_network(level, routing="cdor")
            packets = []
            pid = 0
            for i in topo.active_nodes:
                for j in topo.active_nodes:
                    if i != j:
                        packets.append(Packet(pid=pid, source=i, destination=j, length=5, created_at=pid * 2))
                        pid += 1
            done = drive(network, packets, max_cycles=30000)
            assert len(done) == len(packets), f"lost packets at level {level}"

    def test_injection_to_dark_router_rejected(self):
        network, _ = make_network(4, routing="cdor")
        with pytest.raises(ValueError):
            network.inject(Packet(pid=0, source=0, destination=15, length=5, created_at=0))
        with pytest.raises(ValueError):
            network.inject(Packet(pid=0, source=15, destination=0, length=5, created_at=0))


class TestOrderingAndIntegrity:
    def test_packets_on_same_flow_arrive_in_order(self):
        network, _ = make_network()
        packets = [
            Packet(pid=i, source=0, destination=15, length=5, created_at=i)
            for i in range(20)
        ]
        done = drive(network, packets, max_cycles=5000)
        assert [p.pid for p in done] == list(range(20))

    def test_no_packet_lost_under_load(self):
        from repro.noc.traffic import TrafficGenerator

        network, topo = make_network()
        gen = TrafficGenerator(list(range(16)), 0.5, 5, seed=3)
        done = []
        network.on_packet_ejected = done.append
        injected = 0
        for _ in range(600):
            for p in gen.packets_for_cycle(network.cycle, False):
                network.inject(p)
                injected += 1
            network.step()
        # drain
        for _ in range(5000):
            if network.idle():
                break
            network.step()
        assert network.idle()
        assert len(done) == injected

    def test_flits_in_flight_conserved(self):
        network, _ = make_network()
        p = Packet(pid=0, source=0, destination=10, length=5, created_at=0)
        network.inject(p)
        assert network.flits_in_flight == 5
        drive(network, [])
        assert network.flits_in_flight == 0


class TestFlowControl:
    def test_credits_never_negative_and_bounded(self):
        from repro.noc.traffic import TrafficGenerator

        network, _ = make_network()
        gen = TrafficGenerator(list(range(16)), 0.6, 5, seed=7)
        depth = CFG.buffers_per_vc
        for _ in range(400):
            for p in gen.packets_for_cycle(network.cycle, False):
                network.inject(p)
            network.step()
            for router in network.routers.values():
                for port in range(1, 5):
                    if router.links[port] is None:
                        continue
                    for vc in range(CFG.vcs_per_port):
                        assert 0 <= router.credits[port][vc] <= depth

    def test_buffers_never_exceed_depth(self):
        from repro.noc.traffic import TrafficGenerator

        network, _ = make_network()
        gen = TrafficGenerator(list(range(16)), 0.8, 5, seed=8)
        for _ in range(300):
            for p in gen.packets_for_cycle(network.cycle, False):
                network.inject(p)
            network.step()
            for router in network.routers.values():
                for port in range(5):
                    for vc in range(CFG.vcs_per_port):
                        assert len(router.buf[port][vc]) <= CFG.buffers_per_vc


class TestWormholeInvariants:
    def test_vc_queue_flit_contiguity(self):
        """Flits within one VC queue must be contiguous per packet: a later
        packet's head may queue behind a tail, but never interleave."""
        from repro.noc.traffic import TrafficGenerator

        network, _ = make_network()
        gen = TrafficGenerator(list(range(16)), 0.7, 5, seed=9)
        for _ in range(250):
            for p in gen.packets_for_cycle(network.cycle, False):
                network.inject(p)
            network.step()
            for router in network.routers.values():
                for port in range(5):
                    for vc in range(CFG.vcs_per_port):
                        queue = list(router.buf[port][vc])
                        for a, b in zip(queue, queue[1:]):
                            if a.packet is b.packet:
                                assert b.index == a.index + 1
                            else:
                                assert a.is_tail and b.is_head

    def test_head_va_delay_constant_sane(self):
        assert HEAD_VA_DELAY >= 1
        assert LINK_DELAY >= 1


class TestActivityCounting:
    def test_counts_only_inside_window(self):
        network, _ = make_network()
        p = Packet(pid=0, source=0, destination=3, length=5, created_at=0)
        network.inject(p)
        # counting disabled: nothing recorded
        drive(network, [])
        assert network.activity.total.buffer_reads == 0

    def test_counting_window_records(self):
        network, _ = make_network()
        network.counting = True
        p = Packet(pid=0, source=0, destination=3, length=5, created_at=0)
        done = drive(network, [p])
        assert done
        total = network.activity.total
        assert total.buffer_writes >= 5 * 4  # 5 flits x (inject + 3 hops)
        assert total.buffer_reads == total.crossbar_traversals
        # 3 inter-router hops x 5 flits on links
        assert total.link_traversals == 15
