"""Tests for the CMP execution-time model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cmp.perf_model import (
    SPRINT_LEVELS,
    BenchmarkProfile,
    profile_workload,
)


def make_profile(**overrides):
    kwargs = dict(
        name="toy",
        scaling={1: 1.0, 2: 0.6, 4: 0.4, 8: 0.5, 16: 0.9},
        comm_sensitivity=0.3,
        injection_rate=0.1,
    )
    kwargs.update(overrides)
    return BenchmarkProfile(**kwargs)


class TestValidation:
    def test_requires_all_levels(self):
        with pytest.raises(ValueError):
            make_profile(scaling={1: 1.0, 2: 0.5})

    def test_requires_normalization(self):
        with pytest.raises(ValueError):
            make_profile(scaling={1: 0.9, 2: 0.6, 4: 0.4, 8: 0.5, 16: 0.9})

    def test_requires_positive_times(self):
        with pytest.raises(ValueError):
            make_profile(scaling={1: 1.0, 2: -0.1, 4: 0.4, 8: 0.5, 16: 0.9})

    def test_comm_sensitivity_bounds(self):
        with pytest.raises(ValueError):
            make_profile(comm_sensitivity=1.5)

    def test_injection_bounds(self):
        with pytest.raises(ValueError):
            make_profile(injection_rate=2.0)


class TestRelativeTime:
    def test_table_lookup(self):
        p = make_profile()
        assert p.relative_time(4) == 0.4
        assert p.speedup(4) == pytest.approx(2.5)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            make_profile().relative_time(3)

    def test_latency_factor_penalty(self):
        p = make_profile(comm_sensitivity=0.5)
        base = p.relative_time(4)
        worse = p.relative_time(4, latency_factor=2.0)
        assert worse == pytest.approx(base * 1.5)

    def test_latency_factor_bonus(self):
        p = make_profile(comm_sensitivity=0.5)
        assert p.relative_time(4, latency_factor=0.5) < p.relative_time(4)

    def test_zero_sensitivity_ignores_latency(self):
        p = make_profile(comm_sensitivity=0.0)
        assert p.relative_time(4, latency_factor=3.0) == p.relative_time(4)

    def test_invalid_latency_factor(self):
        with pytest.raises(ValueError):
            make_profile().relative_time(4, latency_factor=0.0)


class TestOptimalLevel:
    def test_clear_minimum(self):
        assert make_profile().optimal_level() == 4

    def test_tolerance_prefers_smaller(self):
        p = make_profile(scaling={1: 1.0, 2: 0.404, 4: 0.400, 8: 0.5, 16: 0.9})
        assert p.optimal_level(tolerance=0.02) == 2
        assert p.optimal_level(tolerance=0.0) == 4

    def test_flat_profile_chooses_one(self):
        p = make_profile(scaling={1: 1.0, 2: 0.999, 4: 0.999, 8: 1.0, 16: 1.01})
        assert p.optimal_level() == 1

    def test_scalable_profile_chooses_sixteen(self):
        p = make_profile(scaling={1: 1.0, 2: 0.5, 4: 0.26, 8: 0.14, 16: 0.08})
        assert p.optimal_level() == 16

    def test_saturates(self):
        assert make_profile().saturates()
        scalable = make_profile(scaling={1: 1.0, 2: 0.5, 4: 0.26, 8: 0.14, 16: 0.08})
        assert not scalable.saturates()

    @given(st.lists(st.floats(0.05, 2.0), min_size=4, max_size=4))
    def test_property_optimal_within_tolerance_of_best(self, tail):
        scaling = dict(zip(SPRINT_LEVELS, [1.0] + tail))
        p = make_profile(scaling=scaling)
        opt = p.optimal_level()
        best = min(scaling.values())
        assert scaling[opt] <= best * 1.02 + 1e-12


class TestInterpolation:
    def test_exact_at_levels(self):
        p = make_profile()
        for level in SPRINT_LEVELS:
            assert p.interpolated_time(level) == pytest.approx(p.scaling[level])

    def test_between_levels_bounded(self):
        p = make_profile()
        t3 = p.interpolated_time(3)
        assert min(p.scaling[2], p.scaling[4]) <= t3 <= max(p.scaling[2], p.scaling[4])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            make_profile().interpolated_time(0.5)
        with pytest.raises(ValueError):
            make_profile().interpolated_time(32)


class TestProfileWorkload:
    def test_decision_fields(self):
        d = profile_workload(make_profile())
        assert d.level == 4
        assert d.speedup_vs_nominal == pytest.approx(2.5)
        assert d.speedup_full_sprint == pytest.approx(1 / 0.9)
        assert d.beats_full_sprint
