"""Fault injection end to end: spec, simulator, thermal retreat, harness."""

import dataclasses

import pytest

from repro.cmp import get_profile
from repro.config import NoCConfig
from repro.core.sprinting import RetreatPolicy, SprintController, SprintMode
from repro.core.topological import SprintTopology
from repro.exec import ResultCache, SweepRunner
from repro.exec.runner import CHAOS_ENV
from repro.noc.sim import simulate
from repro.noc.spec import FaultEvent, FaultSchedule, SimulationSpec, TrafficSpec

CFG = NoCConfig()


def spec_with(faults=None, level=8, rate=0.2, seed=0, **overrides):
    topo = SprintTopology.for_level(4, 4, level)
    kwargs = dict(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG,
        routing="cdor",
        warmup_cycles=200,
        measure_cycles=600,
        drain_cycles=2000,
    )
    if faults is not None:
        kwargs["faults"] = faults
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def fields(result):
    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(result) if f.name != "activity"}


def chaos_rate_failing(specs, count):
    """A chaos rate at which exactly ``count`` of ``specs`` fire."""
    coins = sorted(
        int(s.cache_key()[:8], 16) / float(0xFFFFFFFF) for s in specs
    )
    if count == 0:
        return 0.0
    if count == len(coins):
        return 1.0
    return (coins[count - 1] + coins[count]) / 2.0


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(cycle=-1, node=5)
        with pytest.raises(ValueError):
            FaultEvent(cycle=10)  # router fault needs a node
        with pytest.raises(ValueError):
            FaultEvent(cycle=10, node=5, duration=0)
        with pytest.raises(ValueError):
            FaultEvent(cycle=10, kind="link")  # link fault needs a link
        with pytest.raises(ValueError):
            FaultEvent(cycle=10, kind="meteor", node=5)

    def test_schedule_queries(self):
        schedule = FaultSchedule(events=(
            FaultEvent(cycle=100, node=5, duration=50),
            FaultEvent(cycle=120, node=6),
            FaultEvent(cycle=130, kind="link", link=(2, 1)),
        ))
        assert len(schedule) == 3 and bool(schedule)
        assert schedule.boundaries() == [100, 120, 130, 150]
        assert schedule.faulty_routers_at(110) == frozenset({5})
        assert schedule.faulty_routers_at(160) == frozenset({6})  # 5 recovered
        assert schedule.faulty_links_at(140) == frozenset({(1, 2)})  # normalized
        assert not FaultSchedule()
        assert FaultSchedule().boundaries() == []

    def test_spec_rejects_faulty_master(self):
        with pytest.raises(ValueError):
            spec_with(FaultSchedule((FaultEvent(cycle=10, node=0),)))

    def test_spec_rejects_fault_outside_mesh(self):
        with pytest.raises(ValueError):
            spec_with(FaultSchedule((FaultEvent(cycle=10, node=99),)))

    def test_spec_rejects_non_adjacent_link(self):
        with pytest.raises(ValueError):
            spec_with(FaultSchedule((
                FaultEvent(cycle=10, kind="link", link=(0, 5)),
            )))

    def test_spec_rejects_adaptive_routing_with_faults(self):
        schedule = FaultSchedule((FaultEvent(cycle=10, node=5),))
        with pytest.raises(ValueError):
            spec_with(schedule, level=16, routing="west_first")


class TestCacheKeyCompatibility:
    def test_default_schedule_preserves_existing_keys(self):
        """Acceptance: adding the faults field must not move old keys."""
        assert spec_with().cache_key() == spec_with(FaultSchedule()).cache_key()

    def test_nonempty_schedule_changes_key(self):
        faulty = spec_with(FaultSchedule((FaultEvent(cycle=400, node=5),)))
        assert faulty.cache_key() != spec_with().cache_key()

    def test_distinct_schedules_distinct_keys(self):
        a = spec_with(FaultSchedule((FaultEvent(cycle=400, node=5),)))
        b = spec_with(FaultSchedule((FaultEvent(cycle=401, node=5),)))
        c = spec_with(FaultSchedule((FaultEvent(cycle=400, node=5,
                                                duration=100),)))
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3


class TestSimulatorFaults:
    def test_fault_free_schedule_reproduces_baseline(self):
        """An empty FaultSchedule is bit-identical to no schedule at all."""
        assert fields(simulate(spec_with())) == fields(
            simulate(spec_with(FaultSchedule()))
        )

    def test_permanent_router_fault_degrades_and_reports(self):
        spec = spec_with(FaultSchedule((FaultEvent(cycle=400, node=5),)))
        result = simulate(spec)
        assert result.degraded and result.reconfigurations == 1
        assert result.min_region_level < 8
        assert result.packets_dropped + result.packets_retransmitted > 0
        assert not result.saturated  # the sweep still terminates cleanly
        assert result.packets_ejected <= result.packets_measured

    def test_fault_injection_is_deterministic(self):
        spec = spec_with(FaultSchedule((FaultEvent(cycle=400, node=5),)))
        assert fields(simulate(spec)) == fields(simulate(spec))

    def test_transient_fault_recovers_region(self):
        spec = spec_with(FaultSchedule((
            FaultEvent(cycle=400, node=5, duration=300),
        )))
        result = simulate(spec)
        # one reconfiguration into the fault, one back out of it
        assert result.reconfigurations == 2
        assert result.min_region_level < 8

    def test_link_fault_forces_reconfiguration(self):
        spec = spec_with(FaultSchedule((
            FaultEvent(cycle=400, kind="link", link=(1, 5)),
        )))
        result = simulate(spec)
        assert result.degraded
        assert result.min_region_level < 8

    def test_parallel_sweep_matches_serial_with_faults(self):
        specs = [
            spec_with(FaultSchedule((FaultEvent(cycle=400, node=5),)), rate=r)
            for r in (0.1, 0.2)
        ]
        serial = SweepRunner(workers=1).run(specs)
        parallel = SweepRunner(workers=2).run(specs)
        for a, b in zip(serial.results, parallel.results):
            assert fields(a) == fields(b)


class TestStagedThermalRetreat:
    def test_retreat_halves_level_then_holds_sustainable(self):
        controller = SprintController(retreat=RetreatPolicy())
        profile = get_profile("blackscholes")
        plan = controller.begin_sprint(profile)
        assert plan.level == 16
        sustained = controller.advance(30.0)
        assert sustained == pytest.approx(30.0)
        assert controller.mode is SprintMode.SPRINTING
        # 16 -> 8 -> 4 -> 2: one halving per crossed headroom threshold
        assert [(a, b) for _, a, b in controller.retreat_log] == [
            (16, 8), (8, 4), (4, 2),
        ]
        assert controller.plan_active.level == controller.sustainable_level()
        # the final level holds indefinitely
        assert controller.advance(100.0) == pytest.approx(100.0)
        assert controller.mode is SprintMode.SPRINTING

    def test_retreat_times_are_monotonic(self):
        controller = SprintController(retreat=RetreatPolicy())
        controller.begin_sprint(get_profile("blackscholes"))
        controller.advance(30.0)
        times = [t for t, _, _ in controller.retreat_log]
        assert times == sorted(times) and times[0] > 0

    def test_legacy_default_still_aborts(self):
        """Without a RetreatPolicy the all-or-nothing abort is unchanged."""
        controller = SprintController()
        controller.begin_sprint(get_profile("blackscholes"))
        controller.advance(30.0)
        assert controller.mode is SprintMode.COOLDOWN
        assert controller.plan_active is None
        assert controller.retreat_log == []

    def test_retreat_policy_validation(self):
        with pytest.raises(ValueError):
            RetreatPolicy(thresholds=(0.25, 0.5))  # not descending
        with pytest.raises(ValueError):
            RetreatPolicy(thresholds=(1.5,))

    def test_faulty_controller_avoids_node(self):
        controller = SprintController(faulty=frozenset({5}))
        plan = controller.plan(get_profile("blackscholes"))
        assert 5 not in plan.active_cores
        assert plan.level < 16  # node 5 shadows part of the mesh
        assert plan.expected_speedup > 1.0

    def test_run_staged_survives_where_run_aborts(self):
        from repro.thermal.transient_sprint import SprintTransient

        transient = SprintTransient()
        full = [8.0] * 16
        half = [8.0] * 8 + [0.0] * 8
        nominal = [2.0] + [0.0] * 15
        aborted = transient.run(full, duration_s=4.0)
        assert aborted.reached_limit_at_s is not None
        staged = transient.run_staged([full, half, nominal], duration_s=4.0)
        assert staged.reached_limit_at_s is None
        assert staged.retreats  # at least one stage drop
        assert staged.retreats[0][0] == pytest.approx(
            aborted.reached_limit_at_s
        )
        assert staged.duration_s > aborted.duration_s


class TestHarnessFailureIsolation:
    def make_specs(self):
        return [spec_with(level=4, rate=r, warmup_cycles=100,
                          measure_cycles=300, drain_cycles=600)
                for r in (0.05, 0.1, 0.15, 0.2)]

    def test_worker_exception_isolated_with_traceback(self, monkeypatch):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 2)
        monkeypatch.setenv(CHAOS_ENV, f"raise:{rate}")
        report = SweepRunner(workers=2).run(specs)
        assert len(report.failures) == 2 and len(report.points) == 2
        assert not report.ok
        assert [p.index for p in report.points] == sorted(
            p.index for p in report.points
        )
        for failure in report.failures:
            assert failure.kind == "error"
            assert "chaos" in failure.error
            assert "RuntimeError" in failure.traceback
        # survivors match a clean run bit for bit
        monkeypatch.delenv(CHAOS_ENV)
        clean = SweepRunner().run(specs)
        for point in report.points:
            assert fields(point.result) == fields(
                clean.points[point.index].result
            )

    def test_worker_crash_isolated(self, monkeypatch):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 1)
        monkeypatch.setenv(CHAOS_ENV, f"exit:{rate}")
        report = SweepRunner(workers=2).run(specs)
        assert [f.kind for f in report.failures] == ["crash"]
        assert len(report.points) == 3

    def test_crash_recovers_with_retry(self, monkeypatch, tmp_path):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 2)
        monkeypatch.setenv(CHAOS_ENV, f"exit-once:{rate}:{tmp_path}")
        report = SweepRunner(workers=2, max_retries=1).run(specs)
        assert report.ok and len(report.points) == 4

    def test_hung_point_times_out_and_innocents_survive(self, monkeypatch):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 1)
        monkeypatch.setenv(CHAOS_ENV, f"hang:{rate}:60")
        report = SweepRunner(workers=2, point_timeout=1.5).run(specs)
        assert [f.kind for f in report.failures] == ["timeout"]
        assert len(report.points) == 3

    def test_serial_exception_isolated(self, monkeypatch):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 1)
        monkeypatch.setenv(CHAOS_ENV, f"raise:{rate}")
        report = SweepRunner(workers=1).run(specs)
        assert len(report.failures) == 1 and len(report.points) == 3

    def test_duplicate_of_failed_spec_fails_together(self, monkeypatch):
        spec = self.make_specs()[0]
        monkeypatch.setenv(CHAOS_ENV, "raise")
        report = SweepRunner(workers=1).run([spec, spec])
        assert len(report.failures) == 2
        assert report.total_points == 2

    def test_crashed_sweep_resumes_from_checkpoint(self, monkeypatch, tmp_path):
        specs = self.make_specs()
        rate = chaos_rate_failing(specs, 3)
        monkeypatch.setenv(CHAOS_ENV, f"exit:{rate}")
        first = SweepRunner(
            workers=2, cache=ResultCache(directory=str(tmp_path))
        ).run(specs)
        assert len(first.points) == 1 and len(first.failures) == 3
        monkeypatch.delenv(CHAOS_ENV)
        second = SweepRunner(
            workers=2, cache=ResultCache(directory=str(tmp_path))
        ).run(specs)
        assert second.ok
        assert second.cache_hits == 1  # the survivor was not re-simulated
        assert second.simulated == 3
        assert second.resumed == 1  # recognized as the same sweep

    def test_progress_fires_as_points_complete(self):
        specs = self.make_specs()
        cache = ResultCache()
        SweepRunner(cache=cache).run(specs[:1])  # pre-warm one point
        seen = []
        runner = SweepRunner(
            cache=cache,
            progress=lambda done, total, point: seen.append(
                (done, total, point.cached)
            ),
        )
        runner.run(specs)
        # the cache hit reports first, before any simulation finishes
        assert seen[0] == (1, 4, True)
        assert [done for done, _, _ in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _, total, _ in seen)

    def test_failure_summary_lines(self, monkeypatch):
        specs = self.make_specs()[:2]
        monkeypatch.setenv(CHAOS_ENV, "raise")
        report = SweepRunner(workers=1).run(specs)
        lines = report.failure_lines()
        assert len(lines) == 2
        assert all("attempt" in line for line in lines)
        assert "FAILED: 2 of 2" in report.summary()

    def test_runner_parameter_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(max_retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(point_timeout=0)
        with pytest.raises(ValueError):
            SweepRunner(retry_backoff_s=-0.1)
