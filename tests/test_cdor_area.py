"""Tests for the CDOR vs DOR gate-level area model."""

import pytest

from repro.config import NoCConfig
from repro.core.cdor_area import (
    cdor_area_overhead,
    cdor_routing_logic_gates,
    dor_routing_logic_gates,
    router_area,
)


class TestRoutingLogicGates:
    def test_cdor_strictly_larger(self):
        cfg = NoCConfig()
        assert cdor_routing_logic_gates(cfg) > dor_routing_logic_gates(cfg)

    def test_cdor_addition_is_small(self):
        cfg = NoCConfig()
        extra = cdor_routing_logic_gates(cfg) - dor_routing_logic_gates(cfg)
        assert extra < 100  # a few registers and steering gates

    def test_scales_with_mesh_size(self):
        small = dor_routing_logic_gates(NoCConfig())
        large = dor_routing_logic_gates(NoCConfig(mesh_width=16, mesh_height=16))
        assert large > small  # wider coordinate comparators


class TestRouterArea:
    def test_buffers_dominate(self):
        area = router_area(NoCConfig())
        assert area.buffers > area.crossbar
        assert area.buffers > area.routing_logic * 10

    def test_total_is_sum(self):
        area = router_area(NoCConfig())
        assert area.total == pytest.approx(
            area.buffers + area.crossbar + area.vc_allocator
            + area.switch_allocator + area.routing_logic
        )

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            router_area(NoCConfig(), routing="adaptive")

    def test_more_vcs_more_area(self):
        a2 = router_area(NoCConfig(vcs_per_port=2)).total
        a4 = router_area(NoCConfig(vcs_per_port=4)).total
        assert a4 > a2


class TestOverheadClaim:
    def test_paper_claim_under_two_percent(self):
        """Synthesis result in the paper: CDOR adds < 2 % over a DOR switch."""
        assert 0.0 < cdor_area_overhead() < 0.02

    def test_overhead_shrinks_with_bigger_routers(self):
        small = cdor_area_overhead(NoCConfig(vcs_per_port=2))
        big = cdor_area_overhead(NoCConfig(vcs_per_port=8))
        assert big < small
