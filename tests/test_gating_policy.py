"""Tests for sprint-aware network power gating (Section 3.4)."""

from repro.core.gating_policy import sprint_aware_gating, xy_wakeups_through_dark
from repro.core.topological import SprintTopology


class TestSprintAwareGating:
    def test_wakeup_free_all_levels(self):
        """CDOR never routes through the dark region, so the static plan
        never wakes a gated router -- verified exhaustively per level."""
        for level in range(1, 17):
            topo = SprintTopology.for_level(4, 4, level)
            gating = sprint_aware_gating(topo)
            assert gating.wakeup_free, f"level {level} needs wakeups"
            assert gating.gated_count == 16 - level

    def test_wakeup_free_other_masters(self):
        for master in (5, 10, 15):
            for level in (3, 6, 9):
                topo = SprintTopology.for_level(4, 4, level, master)
                assert sprint_aware_gating(topo).wakeup_free


class TestXyThroughDark:
    def test_full_mesh_no_dark(self):
        topo = SprintTopology.for_level(4, 4, 16)
        assert xy_wakeups_through_dark(topo) == 0

    def test_xy_crosses_dark_on_some_regions(self):
        """Plain XY on the fully-routed mesh sends some active-to-active
        packets through dark routers -- the wakeups CDOR avoids."""
        offending = [
            xy_wakeups_through_dark(SprintTopology.for_level(4, 4, level))
            for level in range(2, 16)
        ]
        assert any(count > 0 for count in offending)

    def test_eight_core_example(self):
        """In the Figure 5a region, XY from node 9 to node 2 would go
        9 -> 10 -> 6 -> 2... wait, XY goes X-first: 9 -> 10 (dark!) is
        wrong -- X-first from (1,2) to (2,0) crosses (2,2)=10 which is dark."""
        topo = SprintTopology.for_level(4, 4, 8)
        assert not topo.is_active(10)
        assert xy_wakeups_through_dark(topo) > 0

    def test_two_node_region_clean(self):
        topo = SprintTopology.for_level(4, 4, 2)
        assert xy_wakeups_through_dark(topo) == 0
