"""Tests for the pluggable simulation-backend registry and its engines.

Covers the registry contract (register / look up / list), the capability
model that lets a limited engine decline runs it cannot simulate, the
``backend="auto"`` selection API built on :func:`requirements` /
:func:`supports`, cache-key stability across the backend field's
introduction, and -- most importantly -- cross-backend equivalence: the
vectorized engine must be *bit-identical* to the reference simulator on
every capability, fault schedules, gating policies and adaptive routing
included.
"""

import contextlib
import dataclasses

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.backends import (
    ALL_CAPABILITIES,
    CAP_ADAPTIVE_ROUTING,
    CAP_FAULTS,
    CAP_GATING,
    CAP_SAMPLING,
    CAP_TRACING,
    BackendCapabilityError,
    ReferenceBackend,
    SimBackend,
    VectorizedBackend,
    check_capabilities,
    get_backend,
    list_backends,
    register_backend,
    required_capabilities,
    requirements,
    resolve_backend,
    supports,
)
from repro.noc.sim import simulate, run_simulation, zero_load_cache, zero_load_latency
from repro.noc.spec import (
    FaultEvent,
    FaultSchedule,
    SimulationSpec,
    TrafficSpec,
    stable_key,
)

CFG = NoCConfig()


def make_spec(level=4, rate=0.1, pattern="uniform", seed=0, routing="cdor",
              warmup=200, measure=600, **kwargs):
    topo = SprintTopology.for_level(4, 4, level)
    traffic = TrafficSpec(tuple(topo.active_nodes), rate,
                          CFG.packet_length_flits, pattern=pattern, seed=seed)
    return SimulationSpec(topo, traffic, CFG, routing=routing,
                          warmup_cycles=warmup, measure_cycles=measure, **kwargs)


@contextlib.contextmanager
def scratch_backend(name="limited", capabilities=frozenset({CAP_TRACING,
                                                            CAP_SAMPLING}),
                    speed_rank=50):
    """Register a throwaway backend (delegates to the reference engine)."""
    from repro.noc.backends.base import _REGISTRY

    class Scratch:
        def __init__(self):
            self.name = name
            self.capabilities = capabilities
            self.speed_rank = speed_rank

        def run(self, spec, *, gating_policy=None, telemetry=None):
            check_capabilities(self, spec, gating_policy, telemetry)
            return get_backend("reference").run(
                spec, gating_policy=gating_policy, telemetry=telemetry)

    backend = register_backend(Scratch())
    try:
        yield backend
    finally:
        _REGISTRY.pop(name, None)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = list_backends()
        assert "reference" in names and "vectorized" in names
        assert names == tuple(sorted(names))

    def test_lookup_returns_declared_engines(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)

    def test_engines_satisfy_the_protocol(self):
        for name in list_backends():
            assert isinstance(get_backend(name), SimBackend)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="vectorized"):
            get_backend("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(ReferenceBackend())

    def test_replace_swaps_and_restores(self):
        original = get_backend("vectorized")
        try:
            swapped = register_backend(VectorizedBackend(), replace=True)
            assert get_backend("vectorized") is swapped
            assert swapped is not original
        finally:
            register_backend(original, replace=True)

    def test_malformed_backends_rejected(self):
        class NoName:
            capabilities = frozenset()
            def run(self, spec, **kw): ...

        class NoRun:
            name = "norun"
            capabilities = frozenset()

        class BadCaps:
            name = "badcaps"
            capabilities = ["faults"]
            def run(self, spec, **kw): ...

        with pytest.raises(ValueError, match="name"):
            register_backend(NoName())
        with pytest.raises(ValueError, match="run"):
            register_backend(NoRun())
        with pytest.raises(ValueError, match="capabilities"):
            register_backend(BadCaps())

    def test_declared_capability_sets(self):
        # both built-in engines now cover the full feature set; capability
        # checks exist for third-party backends that do not
        assert get_backend("reference").capabilities == ALL_CAPABILITIES
        assert get_backend("vectorized").capabilities == ALL_CAPABILITIES


class TestCapabilities:
    def test_plain_spec_needs_nothing(self):
        assert required_capabilities(make_spec()) == frozenset()

    def test_faulty_spec_needs_faults(self):
        spec = make_spec(level=16, faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        assert CAP_FAULTS in required_capabilities(spec)

    def test_adaptive_routing_flagged(self):
        spec = make_spec(level=16, routing="west_first")
        assert CAP_ADAPTIVE_ROUTING in required_capabilities(spec)

    def test_gating_policy_flagged(self):
        need = required_capabilities(make_spec(), gating_policy=object())
        assert CAP_GATING in need

    def test_telemetry_needs_tracing_and_sampling(self):
        from repro.telemetry import Telemetry

        tracing = required_capabilities(make_spec(), telemetry=Telemetry())
        assert CAP_TRACING in tracing and CAP_SAMPLING not in tracing
        sampling = required_capabilities(
            make_spec(), telemetry=Telemetry(sample_interval=50))
        assert CAP_SAMPLING in sampling

    def test_vectorized_accepts_full_capability_runs(self):
        engine = get_backend("vectorized")
        faulted = make_spec(level=16, faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        check_capabilities(engine, faulted, gating_policy=object())
        check_capabilities(engine, make_spec(level=16, routing="negative_first"))

    def test_limited_backend_declines_with_structured_payload(self):
        spec = make_spec(level=16, faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        with scratch_backend() as backend:
            with pytest.raises(BackendCapabilityError) as excinfo:
                check_capabilities(backend, spec, gating_policy=object())
        err = excinfo.value
        assert err.backend == backend.name
        assert err.missing == frozenset({CAP_FAULTS, CAP_GATING})
        # both capable engines are offered as alternatives, plus the hint
        assert set(err.alternatives) >= {"reference", "vectorized"}
        assert "backend='auto'" in str(err)

    def test_supports_uses_declared_capabilities(self):
        spec = make_spec(level=16, routing="west_first")
        assert supports(get_backend("vectorized"), spec)
        assert supports(get_backend("reference"), spec)
        with scratch_backend() as backend:
            assert not supports(backend, spec)
            assert supports(backend, make_spec())

    def test_requirements_public_api(self):
        spec = make_spec(level=16, faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        need = requirements(spec, gating_policy=object())
        assert need == frozenset({CAP_FAULTS, CAP_GATING})
        adaptive = requirements(make_spec(level=16, routing="west_first"))
        assert adaptive == frozenset({CAP_ADAPTIVE_ROUTING})
        assert requirements(make_spec()) == frozenset()

    def test_vectorized_accepts_sampling(self):
        from repro.telemetry import Telemetry

        engine = get_backend("vectorized")
        check_capabilities(engine, make_spec(),
                           telemetry=Telemetry(sample_interval=25))

    def test_sampling_refusal_keeps_its_hint(self):
        """A backend without the capability still gets the guidance."""
        from repro.telemetry import Telemetry

        class NoSampling:
            name = "nosampling"
            capabilities = frozenset({CAP_TRACING})
            def run(self, spec, **kw): ...

        with pytest.raises(BackendCapabilityError, match="sample_interval"):
            check_capabilities(NoSampling(), make_spec(),
                               telemetry=Telemetry(sample_interval=25))

    def test_error_carries_structured_fields(self):
        err = BackendCapabilityError("vectorized", frozenset({CAP_FAULTS}))
        assert err.backend == "vectorized"
        assert err.missing == frozenset({CAP_FAULTS})
        assert isinstance(err, ValueError)

    def test_reference_accepts_everything(self):
        engine = get_backend("reference")
        spec = make_spec(level=16, faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        check_capabilities(engine, spec, gating_policy=object())


class TestCacheKeys:
    """Adding the backend field must not invalidate pre-existing caches."""

    def test_default_backend_absent_from_canonical_form(self):
        from repro.noc.spec import _canonical

        payload = _canonical(make_spec())
        assert "backend" not in payload
        assert "backend" in _canonical(make_spec(backend="vectorized"))

    def test_default_and_explicit_reference_share_a_key(self):
        assert make_spec().cache_key() == make_spec(backend="reference").cache_key()

    def test_non_default_backend_keys_separately(self):
        assert make_spec().cache_key() != make_spec(backend="vectorized").cache_key()

    def test_with_backend_round_trip(self):
        spec = make_spec()
        fast = spec.with_backend("vectorized")
        assert fast.backend == "vectorized"
        assert fast.with_backend("reference").cache_key() == spec.cache_key()

    def test_empty_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            make_spec(backend="")

    def test_zero_load_memo_keys_by_backend(self):
        topo = SprintTopology.for_level(4, 4, 4)
        ref = zero_load_latency(topo, CFG, "cdor")
        fast = zero_load_latency(topo, CFG, "cdor", backend="vectorized")
        assert ref == fast  # same analytic model today
        cache = zero_load_cache()
        # the default engine keeps the historical (backend-free) key shape
        assert cache.get(stable_key(("zero_load_latency", topo, CFG, "cdor"))) == ref
        assert cache.get(stable_key(
            ("zero_load_latency", "vectorized", topo, CFG, "cdor"))) == fast


class TestAutoBackend:
    """``backend="auto"`` resolves through the public requirements/supports
    API to the fastest capable engine, without perturbing cache keys."""

    def test_auto_resolves_to_fastest_capable(self):
        assert make_spec(backend="auto").resolved_backend() == "vectorized"
        assert resolve_backend(make_spec()).name == "vectorized"

    def test_auto_covers_the_full_capability_grid(self):
        faulted = make_spec(level=16, backend="auto", faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        adaptive = make_spec(level=16, backend="auto", routing="west_first")
        assert faulted.resolved_backend() == "vectorized"
        assert adaptive.resolved_backend() == "vectorized"

    def test_auto_prefers_higher_speed_rank(self):
        with scratch_backend(name="turbo", capabilities=ALL_CAPABILITIES,
                             speed_rank=99):
            assert make_spec(backend="auto").resolved_backend() == "turbo"

    def test_auto_skips_backends_missing_a_capability(self):
        spec = make_spec(level=16, backend="auto", faults=FaultSchedule(
            (FaultEvent(cycle=100, node=5),)))
        with scratch_backend(name="turbo", speed_rank=99):  # no faults token
            assert spec.resolved_backend() == "vectorized"

    def test_auto_resolution_failure_is_structured(self):
        from repro.noc.backends.base import _REGISTRY

        saved = dict(_REGISTRY)
        try:
            _REGISTRY.clear()
            with scratch_backend():  # tracing/sampling only
                spec = make_spec(level=16, backend="auto", faults=FaultSchedule(
                    (FaultEvent(cycle=100, node=5),)))
                with pytest.raises(BackendCapabilityError, match="auto"):
                    spec.resolved_backend()
        finally:
            _REGISTRY.clear()
            _REGISTRY.update(saved)

    def test_auto_cache_key_is_the_resolved_engines(self):
        auto = make_spec(backend="auto")
        assert auto.cache_key() == make_spec(
            backend=auto.resolved_backend()).cache_key()

    def test_auto_never_changes_explicit_backend_keys(self):
        explicit = make_spec(backend="vectorized")
        default = make_spec()
        keys = (explicit.cache_key(), default.cache_key())
        with scratch_backend(name="turbo", capabilities=ALL_CAPABILITIES,
                             speed_rank=999):
            assert (explicit.cache_key(), default.cache_key()) == keys

    def test_simulate_accepts_auto(self):
        spec = make_spec(level=8, rate=0.2, seed=5)
        auto = simulate(spec, backend="auto")
        fast = simulate(spec, backend="vectorized")
        assert_identical(auto, fast, "auto override")
        via_field = run_simulation(spec.with_backend("auto"))
        assert_identical(via_field, fast, "auto spec field")


class TestResultCompat:
    def test_pickled_results_keep_their_import_path(self):
        import repro.noc.result
        import repro.noc.sim

        assert repro.noc.sim.SimulationResult is repro.noc.result.SimulationResult


def assert_identical(a, b, label):
    """Every field of two SimulationResults must match exactly."""
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    assert set(da) == set(db)
    for name in da:
        assert da[name] == db[name], f"{label}: field {name!r} diverges"


EQUIV_CASES = [
    # (level, rate, pattern, routing)
    (16, 0.05, "uniform", "xy"),
    (16, 0.30, "transpose", "xy"),
    (16, 0.15, "bit_complement", "cdor"),
    (8, 0.20, "uniform", "cdor"),
    (4, 0.10, "tornado", "cdor"),
    (4, 0.45, "hotspot", "cdor"),
    (2, 0.25, "neighbor", "cdor"),
    (1, 0.20, "uniform", "cdor"),
    # adaptive turn models (full mesh only)
    (16, 0.30, "transpose", "west_first"),
    (16, 0.40, "uniform", "negative_first"),
]


class TestCrossBackendEquivalence:
    """The acceptance bar: bit-for-bit agreement on the shared feature set."""

    @pytest.mark.parametrize("level,rate,pattern,routing", EQUIV_CASES)
    def test_results_bit_identical(self, level, rate, pattern, routing):
        spec = make_spec(level=level, rate=rate, pattern=pattern,
                         routing=routing, seed=level)
        ref = simulate(spec, backend="reference")
        fast = simulate(spec, backend="vectorized")
        assert_identical(ref, fast, f"L{level} r{rate} {pattern}/{routing}")

    def test_saturated_run_agrees(self):
        spec = make_spec(level=16, rate=1.8, routing="xy",
                         warmup=200, measure=400, drain_cycles=500)
        ref = simulate(spec, backend="reference")
        fast = simulate(spec, backend="vectorized")
        assert ref.saturated and fast.saturated
        assert_identical(ref, fast, "saturated")

    def test_python_fallback_agrees(self, monkeypatch):
        """With the native kernel disabled the pure-Python vectorized path
        must produce the same bits."""
        from repro.noc.backends import native

        monkeypatch.setenv("REPRO_NOC_NATIVE", "0")
        assert not native.available()
        spec = make_spec(level=8, rate=0.2, seed=3)
        fast = simulate(spec, backend="vectorized")
        monkeypatch.delenv("REPRO_NOC_NATIVE")
        assert_identical(simulate(spec, backend="reference"), fast, "fallback")

    def test_spec_backend_field_selects_engine(self):
        spec = make_spec(level=4, rate=0.1, seed=7)
        via_field = run_simulation(spec.with_backend("vectorized"))
        via_override = run_simulation(spec, backend="vectorized")
        assert_identical(via_field, via_override, "selection")


FAULT_CASES = [
    # (label, level, rate, routing, events)
    ("permanent router", 16, 0.12, "cdor",
     (FaultEvent(cycle=300, node=5),)),
    ("transient router", 16, 0.15, "xy",
     (FaultEvent(cycle=300, node=5, duration=400),)),
    ("two faults", 16, 0.20, "cdor",
     (FaultEvent(cycle=250, node=5),
      FaultEvent(cycle=500, node=10, duration=400))),
    ("link fault", 16, 0.10, "cdor",
     (FaultEvent(cycle=400, kind="link", link=(5, 6)),)),
    ("degraded region", 9, 0.15, "cdor",
     (FaultEvent(cycle=350, node=5),)),
]


class TestFullCapabilityEquivalence:
    """The tentpole bar: the fast path must match the reference bit for bit
    on faulted, gated and adaptively-routed runs -- counters, latency
    distribution and gating statistics included."""

    @pytest.mark.parametrize("label,level,rate,routing,events",
                             FAULT_CASES, ids=[c[0] for c in FAULT_CASES])
    def test_faulted_runs_bit_identical(self, label, level, rate, routing,
                                        events):
        spec = make_spec(level=level, rate=rate, routing=routing, seed=level,
                         faults=FaultSchedule(events))
        ref = simulate(spec, backend="reference")
        fast = simulate(spec, backend="vectorized")
        assert ref.reconfigurations >= 1  # the schedule actually fired
        assert_identical(ref, fast, label)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_faulted_runs_deterministic_across_seeds(self, seed):
        """Seed-swept fault schedules: every seed reproduces exactly on
        re-run and agrees across engines."""
        spec = make_spec(level=16, rate=0.15, warmup=200, measure=400,
                         faults=FaultSchedule(
                             (FaultEvent(cycle=300, node=5, duration=300),))
                         ).with_seed(seed)
        first = simulate(spec, backend="vectorized")
        again = simulate(spec, backend="vectorized")
        assert_identical(first, again, f"rerun seed={seed}")
        assert_identical(simulate(spec, backend="reference"), first,
                         f"cross-engine seed={seed}")

    @staticmethod
    def _gated_pair(spec):
        from repro.noc.power_gating import TimeoutGatingPolicy

        ref_policy = TimeoutGatingPolicy(idle_timeout=16)
        fast_policy = TimeoutGatingPolicy(idle_timeout=16)
        ref = simulate(spec, gating_policy=ref_policy, backend="reference")
        fast = simulate(spec, gating_policy=fast_policy, backend="vectorized")
        return ref, fast, ref_policy.stats, fast_policy.stats

    @pytest.mark.parametrize("level,rate", [(16, 0.05), (16, 0.30), (9, 0.08)])
    def test_gated_runs_bit_identical(self, level, rate):
        spec = make_spec(level=level, rate=rate, seed=level)
        ref, fast, ref_stats, fast_stats = self._gated_pair(spec)
        assert ref_stats.gate_events > 0  # the policy actually gated
        assert_identical(ref, fast, f"gated L{level} r{rate}")
        assert dataclasses.asdict(ref_stats) == dataclasses.asdict(fast_stats)

    def test_gated_faulted_run_bit_identical(self):
        spec = make_spec(level=16, rate=0.05, seed=3, faults=FaultSchedule(
            (FaultEvent(cycle=300, node=5, duration=300),)))
        ref, fast, ref_stats, fast_stats = self._gated_pair(spec)
        assert ref.reconfigurations == 2
        assert_identical(ref, fast, "gated+faulted")
        assert dataclasses.asdict(ref_stats) == dataclasses.asdict(fast_stats)

    def test_faulted_counters_surface_drops(self):
        spec = make_spec(level=16, rate=0.25, seed=5, faults=FaultSchedule(
            (FaultEvent(cycle=400, node=5),)))
        ref = simulate(spec, backend="reference")
        fast = simulate(spec, backend="vectorized")
        assert fast.packets_dropped == ref.packets_dropped > 0
        assert fast.min_region_level == ref.min_region_level < 16


class TestSamplingParity:
    """Sampled telemetry runs must produce identical sample streams and
    metrics on every backend -- the fast path earns its ``sampling``
    capability by emitting byte-for-byte what the reference emits."""

    @staticmethod
    def _run(spec, backend, interval=100):
        from repro.telemetry import Telemetry

        tel = Telemetry(sample_interval=interval)
        result = simulate(spec, backend=backend, telemetry=tel)
        events = tel.tracer.drain()
        samples = [e["data"] for e in events if e["ev"] == "sample"]
        spans = sorted(e["name"] for e in events if e["ev"] == "begin")
        return result, samples, spans, tel.metrics.snapshot()

    SAMPLED_CASES = [
        dict(level=16, rate=0.30, pattern="transpose", routing="xy", seed=2),
        dict(level=4, rate=0.15, seed=3),
        dict(level=4, rate=0.001, seed=9),  # mostly idle: back-filled rows
        dict(level=1, rate=0.20, seed=7),
        # the tentpole capabilities must sample identically too
        dict(level=16, rate=0.25, seed=4, routing="west_first"),
        dict(level=16, rate=0.12, seed=5,
             faults=FaultSchedule((FaultEvent(cycle=300, node=5),))),
    ]

    @pytest.mark.parametrize("case", SAMPLED_CASES)
    def test_python_kernel_matches_reference(self, case, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_NATIVE", "0")
        spec = make_spec(**case)
        ref, ref_samples, ref_spans, ref_metrics = self._run(spec, "reference")
        fast, samples, spans, metrics = self._run(spec, "vectorized")
        assert_identical(ref, fast, f"sampled {case}")
        assert ref_samples == samples
        assert ref_spans == spans
        assert ref_metrics == metrics

    @pytest.mark.parametrize("case", SAMPLED_CASES)
    def test_native_kernel_matches_reference(self, case, monkeypatch):
        from repro.noc.backends import native

        monkeypatch.delenv("REPRO_NOC_NATIVE", raising=False)
        if not native.available():
            pytest.skip("no C compiler / native kernel disabled")
        spec = make_spec(**case)
        ref, ref_samples, ref_spans, ref_metrics = self._run(spec, "reference")
        fast, samples, spans, metrics = self._run(spec, "vectorized")
        assert_identical(ref, fast, f"native sampled {case}")
        assert ref_samples == samples
        assert ref_spans == spans
        assert ref_metrics == metrics

    @pytest.mark.parametrize("events", [
        (FaultEvent(cycle=300, node=5, duration=300),),
        (FaultEvent(cycle=300, node=5), FaultEvent(cycle=500, node=9)),
        # boundary landing in the drain window, after the measure flip
        (FaultEvent(cycle=300, node=5, duration=450),),
    ], ids=["transient", "two-permanent", "recovery-in-drain"])
    def test_faulted_span_stream_ordered_identically(self, events):
        """Reconfigure spans must interleave with the phase transitions in
        the reference's exact order (boundary processing precedes the
        phase check at the same cycle), with identical payloads."""
        from repro.telemetry import Telemetry

        spec = make_spec(level=16, rate=0.12, seed=6,
                         faults=FaultSchedule(events))
        streams = {}
        for backend in ("reference", "vectorized"):
            tel = Telemetry(sample_interval=100)
            simulate(spec, backend=backend, telemetry=tel)
            streams[backend] = [
                (e["name"],
                 {k: v for k, v in e.items() if k not in ("id", "parent", "ts")})
                for e in tel.tracer.drain() if e["ev"] == "begin"
            ]
        assert streams["reference"] == streams["vectorized"]
        assert [n for n, _ in streams["reference"]].count("reconfigure") \
            == len(FaultSchedule(events).boundaries())

    def test_saturated_sampled_run_agrees(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_NATIVE", "0")
        spec = make_spec(level=16, rate=1.8, routing="xy",
                         warmup=200, measure=400, drain_cycles=500)
        ref, ref_samples, _, _ = self._run(spec, "reference")
        fast, samples, _, _ = self._run(spec, "vectorized")
        assert ref.saturated and fast.saturated
        assert ref_samples == samples

    def test_gated_sampled_run_agrees(self, monkeypatch):
        from repro.noc.power_gating import TimeoutGatingPolicy
        from repro.telemetry import Telemetry

        monkeypatch.setenv("REPRO_NOC_NATIVE", "0")
        spec = make_spec(level=16, rate=0.05, seed=3)
        streams = {}
        for backend in ("reference", "vectorized"):
            tel = Telemetry(sample_interval=100)
            result = simulate(spec, gating_policy=TimeoutGatingPolicy(
                idle_timeout=16), telemetry=tel, backend=backend)
            events = tel.tracer.drain()
            streams[backend] = (
                dataclasses.asdict(result),
                [e["data"] for e in events if e["ev"] == "sample"],
                tel.metrics.snapshot(),
            )
        assert streams["reference"] == streams["vectorized"]
        # gated routers are visible in the sample payloads
        assert any(stats["gated"]
                   for _, samples, _ in [streams["reference"]]
                   for data in samples for stats in data["routers"].values())

    def test_sample_payload_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_NATIVE", "0")
        _, samples, _, _ = self._run(make_spec(level=4, rate=0.15), "vectorized")
        assert samples
        for data in samples:
            assert data["cycle"] % 100 == 0
            assert set(data) == {"cycle", "in_flight", "buffered", "routers"}
            assert len(data["routers"]) == 4
            for stats in data["routers"].values():
                assert set(stats) == {"inj", "ej", "occ", "gated"}
                assert stats["gated"] == 0


class TestInvariants:
    """Physical invariants that must hold on every backend."""

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_deadlock_free_below_saturation(self, backend):
        res = simulate(make_spec(level=16, rate=0.1, routing="cdor"),
                       backend=backend)
        assert not res.saturated
        assert res.packets_ejected == res.packets_measured

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_latency_monotone_in_load(self, backend):
        lat = [simulate(make_spec(level=16, rate=r, routing="xy"),
                        backend=backend).avg_latency
               for r in (0.05, 0.3, 0.6)]
        assert lat[0] < lat[1] < lat[2]

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_region_latency_convex_in_level(self, backend):
        """Smaller sprint regions have shorter paths: zero-load-ish latency
        must not increase as the region shrinks (paper Fig. 9 shape)."""
        lat = {level: simulate(make_spec(level=level, rate=0.05), backend=backend
                               ).avg_latency
               for level in (2, 4, 8, 16)}
        assert lat[2] <= lat[4] <= lat[8] <= lat[16]

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_activity_covers_exactly_the_region(self, backend):
        res = simulate(make_spec(level=4, rate=0.1), backend=backend)
        assert res.powered_router_count == 4


class TestDriverPlumbing:
    def test_live_generator_pins_reference(self):
        from repro.noc.traffic import TrafficGenerator

        topo = SprintTopology.for_level(4, 4, 4)
        traffic = TrafficGenerator(list(topo.active_nodes), 0.1,
                                   CFG.packet_length_flits)
        with pytest.raises(ValueError, match="reference"):
            run_simulation(topo, traffic, CFG, backend="vectorized")

    def test_cli_sweep_accepts_backend(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--levels", "4", "--rates", "0.1",
                     "--warmup", "100", "--measure", "300", "--drain", "400",
                     "--backend", "vectorized"]) == 0
        assert "grid sweep" in capsys.readouterr().out

    def test_cli_sweep_accepts_auto_backend(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--levels", "16", "--rates", "0.1",
                     "--warmup", "100", "--measure", "300", "--drain", "600",
                     "--backend", "auto", "--fault", "5@200"]) == 0
        out = capsys.readouterr().out
        assert "grid sweep" in out and "min lvl" in out

    def test_cli_rejects_backend_capability_mismatch(self, capsys):
        """Eager grid validation reports *every* incompatible point."""
        from repro.cli import main

        with scratch_backend() as backend:  # no faults capability
            code = main(["sweep", "--levels", "16", "--rates", "0.1", "0.2",
                         "--patterns", "uniform", "transpose",
                         "--backend", backend.name, "--fault", "5@100"])
        out = capsys.readouterr().out
        assert code == 2
        # one line per bad point (4) plus the closing summary line
        assert out.count("invalid sweep grid") == 5
        assert "4 of 4 points" in out
        assert "does not support: faults" in out

    def test_cli_backends_matrix(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "vectorized" in out
        for token in sorted(ALL_CAPABILITIES):
            assert token in out
        assert "auto" in out

    def test_system_backend_parameter(self):
        from repro.core.system import NoCSprintingSystem

        fast = NoCSprintingSystem(backend="vectorized")
        ref = NoCSprintingSystem()
        spec = fast.simulation_spec("dedup", "noc_sprinting",
                                    warmup_cycles=100, measure_cycles=300)
        assert spec.backend == "vectorized"
        a = fast.evaluate("dedup", "noc_sprinting", simulate_network=True,
                          warmup_cycles=200, measure_cycles=600).network
        b = ref.evaluate("dedup", "noc_sprinting", simulate_network=True,
                         warmup_cycles=200, measure_cycles=600).network
        assert a.avg_latency == b.avg_latency
        assert a.total_power_w == b.total_power_w
