"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sprint", "nonexistent"])

    def test_network_defaults(self):
        args = build_parser().parse_args(["network"])
        assert args.level == 4
        assert args.pattern == "uniform"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "4 x 4 2D Mesh" in out
        assert "MESI" in out

    def test_sprint_fast(self, capsys):
        assert main(["sprint", "dedup", "--no-network", "--no-thermal"]) == 0
        out = capsys.readouterr().out
        assert "noc_sprinting" in out
        assert "duration gain" in out

    def test_sweep(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "freqmine" in out
        assert "S(noc)=3.6" in out or "S(noc)=3.7" in out

    def test_sweep_grid_mode(self, capsys):
        assert main(["sweep", "--levels", "2", "--rates", "0.05",
                     "--warmup", "100", "--measure", "300", "--drain", "400",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "grid sweep (repro.exec engine)" in out
        assert "100% hit rate" in out  # the --repeat run is fully cached

    def test_sweep_grid_rejects_bad_pattern_shape(self, capsys):
        # shuffle needs a power-of-two endpoint count; level 3 is not
        assert main(["sweep", "--levels", "3", "--rates", "0.05",
                     "--patterns", "shuffle"]) == 2
        assert "invalid sweep grid" in capsys.readouterr().out

    def test_network(self, capsys):
        assert main(["network", "--level", "2", "--rates", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "2-node sprint region" in out
        assert "cdor" in out

    def test_network_full_mesh_uses_xy(self, capsys):
        assert main(["network", "--level", "16", "--rates", "0.05"]) == 0
        assert "(xy)" in capsys.readouterr().out

    def test_thermal(self, capsys):
        assert main(["thermal", "dedup"]) == 0
        out = capsys.readouterr().out
        assert "full-sprinting" in out
        assert "floorplan" in out

    def test_duration(self, capsys):
        assert main(["duration"]) == 0
        out = capsys.readouterr().out
        assert "paper +55.4" in out

    def test_figure_unknown_id(self, capsys):
        assert main(["figure", "fig99"]) == 2
        out = capsys.readouterr().out
        assert "no bench matches" in out
        assert "fig03" in out  # lists what is available

    def test_figure_runs_bench(self, capsys):
        assert main(["figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
