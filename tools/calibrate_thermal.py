"""Calibrate ThermalParams against the Figure 12 peak temperatures.

Targets (kelvin): full-sprint uniform -> 358.3; 4-core clustered
NoC-sprint -> 347.79; 4-core thermal-aware floorplan -> 343.81.

Run: python tools/calibrate_thermal.py
Prints the best (g_lateral, g_vertical, g_edge) found by a coarse grid
search followed by Nelder-Mead; paste the winner into
repro/thermal/grid.py's ThermalParams defaults.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.power.chip_power import ChipPowerModel
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.grid import ThermalGrid, ThermalParams

TARGETS = {"full": 358.3, "cluster": 347.79, "floorplanned": 343.81}


def peaks(params: ThermalParams) -> dict[str, float]:
    grid = ThermalGrid(4, 4, 4, params)
    model = ChipPowerModel(16)
    full_topo = SprintTopology.for_level(4, 4, 16)
    topo4 = SprintTopology.for_level(4, 4, 4)
    fp = thermal_aware_floorplan(4, 4)
    return {
        "full": grid.peak_temperature(sprint_tile_powers(full_topo, model)),
        "cluster": grid.peak_temperature(sprint_tile_powers(topo4, model)),
        "floorplanned": grid.peak_temperature(sprint_tile_powers(topo4, model, fp)),
    }


def loss(x) -> float:
    gl, gv, ge, rsp = x
    if gl <= 0 or gv <= 0 or ge < 0 or rsp <= 0:
        return 1e6
    p = ThermalParams(
        lateral_conductance_w_per_k=gl,
        vertical_conductance_w_per_k=gv,
        edge_extra_conductance_w_per_k=ge,
        spreader_resistance_k_per_w=rsp,
    )
    got = peaks(p)
    return sum((got[k] - TARGETS[k]) ** 2 for k in TARGETS)


def main() -> None:
    best = None
    for gl in (0.03, 0.06, 0.12):
        for gv in (0.012, 0.024, 0.048):
            for ge in (0.0, 0.005, 0.01):
                for rsp in (0.05, 0.075, 0.1):
                    value = loss((gl, gv, ge, rsp))
                    if best is None or value < best[0]:
                        best = (value, (gl, gv, ge, rsp))
    print("coarse best:", best)
    result = minimize(loss, np.array(best[1]), method="Nelder-Mead",
                      options={"xatol": 1e-6, "fatol": 1e-6, "maxiter": 4000})
    gl, gv, ge, rsp = result.x
    final = ThermalParams(
        lateral_conductance_w_per_k=gl,
        vertical_conductance_w_per_k=gv,
        edge_extra_conductance_w_per_k=ge,
        spreader_resistance_k_per_w=rsp,
    )
    print(
        f"g_lateral={gl:.6f} g_vertical={gv:.6f} g_edge={ge:.7f} "
        f"r_spreader={rsp:.6f} loss={result.fun:.6g}"
    )
    print("peaks:", {k: round(v, 2) for k, v in peaks(final).items()})
    print("targets:", TARGETS)


if __name__ == "__main__":
    main()
