"""Figure 7: execution time with different sprinting mechanisms.

Paper: NoC-sprinting achieves 3.6x average speedup over non-sprinting;
full-sprinting only 1.9x because over-provisioned parallelism hurts the
peaking workloads."""

import pytest

from repro.cmp.workloads import all_profiles
from repro.util.charts import bar_chart
from repro.util.tables import format_table

from benchmarks.common import report, shared_system


def sweep():
    system = shared_system()
    rows = []
    for profile in all_profiles():
        noc = system.evaluate(profile, "noc_sprinting")
        rows.append(
            (
                profile.name,
                noc.level,
                system.evaluate(profile, "non_sprinting").relative_time,
                system.evaluate(profile, "full_sprinting").relative_time,
                noc.relative_time,
            )
        )
    return rows


def test_fig07_execution_time(benchmark):
    rows = benchmark(sweep)
    table = [
        [name, level, non, full, noc, 1 / full, 1 / noc]
        for name, level, non, full, noc in rows
    ]
    noc_mean = sum(1 / noc for *_, noc in rows) / len(rows)
    full_mean = sum(1 / full for _, _, _, full, _ in rows) / len(rows)
    body = format_table(
        ["benchmark", "level", "T(non)", "T(full)", "T(noc)", "S(full)", "S(noc)"],
        table,
    )
    body += (
        f"\nmean speedup: NoC-sprinting {noc_mean:.2f}x (paper 3.6x), "
        f"full-sprinting {full_mean:.2f}x (paper 1.9x)\n\n"
    )
    body += bar_chart(
        {f"{name} (noc)": 1 / noc for name, *_, noc in rows},
        title="speedup over non-sprinting (NoC-sprinting)",
    )
    report("Figure 7: execution time by sprinting scheme", body)

    assert noc_mean == pytest.approx(3.6, abs=0.25)
    assert full_mean == pytest.approx(1.9, abs=0.25)
    # NoC-sprinting substantially beats full-sprinting on average and never loses
    assert noc_mean > 1.5 * full_mean
    for name, _, non, full, noc in rows:
        assert noc <= full + 1e-9, name
        assert noc <= non + 1e-9, name
