"""Figure 4: PARSEC execution time while increasing the available cores --
the workload-dependence that motivates fine-grained sprinting."""

from repro.cmp.perf_model import SPRINT_LEVELS
from repro.cmp.workloads import (
    FLAT_BENCHMARKS,
    PEAKING_BENCHMARKS,
    SCALABLE_BENCHMARKS,
    all_profiles,
)
from repro.util.tables import format_table

from benchmarks.common import report


def scaling_table():
    return {p.name: [p.scaling[n] for n in SPRINT_LEVELS] for p in all_profiles()}


def test_fig04_parsec_scaling(benchmark):
    table = benchmark(scaling_table)
    rows = [[name] + times for name, times in table.items()]
    report(
        "Figure 4: PARSEC relative execution time vs core count",
        format_table(["benchmark", "1", "2", "4", "8", "16"], rows),
    )

    # scalable class: monotone improvement to 16 cores
    for name in SCALABLE_BENCHMARKS:
        times = table[name]
        assert times == sorted(times, reverse=True), name
        assert times[-1] < 0.15  # substantial speedup

    # flat class: nearly identical across configurations
    for name in FLAT_BENCHMARKS:
        times = table[name]
        assert max(times) / min(times) < 1.15, name

    # peaking class: a clear dip followed by degradation; the worst cases
    # (vips, swaptions) end slower than single-core
    for name in PEAKING_BENCHMARKS:
        times = table[name]
        assert min(times) < 0.65, name
        assert times[-1] > min(times), name
    assert table["vips"][-1] > 1.0
    assert table["swaptions"][-1] > 1.0
