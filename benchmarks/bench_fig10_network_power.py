"""Figure 10: total network power during the sprint phase of PARSEC.

Paper: NoC-sprinting saves 71.9 % network power vs full-sprinting by
powering only the sprint region and gating the rest."""

from repro.util.tables import format_table

from benchmarks.bench_fig09_network_latency import paired_specs
from benchmarks.common import once, report, run_specs, shared_system


def sweep():
    """Identical simulation grid to Fig. 9 (same specs, same cache keys):
    when both benches run in one session the cycle simulations are served
    entirely from the shared result cache and only the power model runs."""
    system = shared_system()
    labels, specs = paired_specs()
    results = run_specs(specs)
    evals = {
        (profile.name, scheme): system.network_evaluation_for(spec, sim, scheme)
        for (profile, _, scheme), spec, sim in zip(labels, specs, results.results)
    }
    rows = []
    for profile, level, scheme in labels:
        if scheme != "noc_sprinting":
            continue
        noc = evals[(profile.name, "noc_sprinting")]
        full = evals[(profile.name, "full_sprinting")]
        rows.append((profile.name, level, full.total_power_w, noc.total_power_w))
    return rows


def test_fig10_network_power(benchmark):
    rows = once(benchmark, sweep)
    table = [
        [name, level, full * 1e3, noc * 1e3, 100 * (1 - noc / full)]
        for name, level, full, noc in rows
    ]
    mean_saving = sum(r[-1] for r in table) / len(table)
    body = format_table(
        ["benchmark", "level", "full-sprint (mW)", "NoC-sprint (mW)", "saving %"],
        table,
        float_format="{:.1f}",
    )
    body += f"\nmean network power saving: {mean_saving:.1f} % (paper 71.9 %)"
    report("Figure 10: total network power on PARSEC", body)

    assert 55.0 < mean_saving < 85.0
    # the lower the sprint level, the bigger the saving
    by_level = {}
    for name, level, full, noc in rows:
        by_level.setdefault(level, []).append(1 - noc / full)
    means = {lvl: sum(v) / len(v) for lvl, v in by_level.items()}
    levels = sorted(means)
    assert all(means[a] >= means[b] for a, b in zip(levels, levels[1:]))
