"""Figure 8: core power dissipation with different sprinting schemes.

Paper: fine-grained sprinting without gating saves 25.5 % vs full-sprint;
NoC-sprinting (with gating) saves 69.1 % on average; blackscholes and
bodytrack leave no gating headroom because their optimum is full sprint."""

import pytest

from repro.cmp.workloads import all_profiles
from repro.util.tables import format_table

from benchmarks.common import report, shared_system


def sweep():
    system = shared_system()
    rows = []
    for profile in all_profiles():
        noc = system.evaluate(profile, "noc_sprinting")
        rows.append(
            (
                profile.name,
                noc.level,
                system.evaluate(profile, "full_sprinting").core_power_w,
                system.evaluate(profile, "naive_fine_grained").core_power_w,
                noc.core_power_w,
            )
        )
    return rows


def test_fig08_core_power(benchmark):
    rows = benchmark(sweep)
    table = [list(r) for r in rows]
    naive_saving = 100 * (1 - sum(r[3] for r in rows) / sum(r[2] for r in rows))
    noc_saving = 100 * (1 - sum(r[4] for r in rows) / sum(r[2] for r in rows))
    body = format_table(
        ["benchmark", "level", "full (W)", "fine-grained no gating (W)", "NoC-sprinting (W)"],
        table,
        float_format="{:.1f}",
    )
    body += (
        f"\nmean saving vs full-sprinting: fine-grained (idle) {naive_saving:.1f} % "
        f"(paper 25.5 %), NoC-sprinting {noc_saving:.1f} % (paper 69.1 %)"
    )
    report("Figure 8: core power dissipation", body)

    assert naive_saving == pytest.approx(25.5, abs=3.0)
    assert noc_saving == pytest.approx(69.1, abs=3.0)
    for name, level, full, naive, noc in rows:
        if level == 16:
            # no gating headroom for the fully-scalable benchmarks
            assert noc == pytest.approx(full)
        else:
            assert noc < naive < full, name
