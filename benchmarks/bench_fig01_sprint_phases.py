"""Figure 1: the sprint timeline -- nominal operation, three sprint phases
(heat to T_melt, melt plateau, heat to T_max), forced single-core fallback.
"""

import math

from repro.power.chip_power import ChipPowerModel
from repro.thermal.pcm import DEFAULT_PCM, sprint_phases, temperature_timeline
from repro.util.charts import line_plot
from repro.util.tables import format_table

from benchmarks.common import once, report


def full_sprint_timeline():
    full_power = ChipPowerModel(16).sprint_chip_power(16, "full").total
    phases = sprint_phases(full_power)
    samples = temperature_timeline(full_power, points_per_phase=8, cooldown_s=2.0)
    return full_power, phases, samples


def test_fig01_sprint_phases(benchmark):
    full_power, phases, samples = once(benchmark, full_sprint_timeline)
    rows = [[f"{t:.3f}", f"{k:.1f}"] for t, k in samples[:: max(1, len(samples) // 16)]]
    body = format_table(["time (s)", "temperature (K)"], rows)
    body += (
        f"\nphase 1 (heat to melt): {phases.heat_to_melt_s * 1e3:.1f} ms"
        f"\nphase 2 (melting):      {phases.melting_s * 1e3:.1f} ms"
        f"\nphase 3 (melt to max):  {phases.melt_to_max_s * 1e3:.1f} ms"
        f"\ntotal sprint:           {phases.total_s:.3f} s at {full_power:.1f} W\n\n"
    )
    body += line_plot(
        {"temperature": samples}, width=56, height=12,
        title="die temperature over the sprint (K vs s)",
    )
    report("Figure 1: sprint phases (full 16-core sprint)", body)

    # shape: ~1 s worst-case full sprint, dominated by the melt plateau
    assert math.isclose(phases.total_s, 1.0, rel_tol=0.15)
    assert phases.melting_s > 0.5 * phases.total_s
    temps = [k for _, k in samples]
    assert temps[0] == DEFAULT_PCM.start_temperature_k
    assert max(temps) == DEFAULT_PCM.max_temperature_k
    # plateau exists: many consecutive samples at exactly T_melt
    assert sum(1 for k in temps if k == DEFAULT_PCM.melt_temperature_k) >= 8
