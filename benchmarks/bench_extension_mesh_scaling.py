"""Extension: multicore scaling to an 8x8 (64-core) mesh.

The paper's motivation is generational: dark silicon grows each node, and
Figure 3 already extrapolates chip power to 32 cores.  This extension runs
the NoC-sprinting machinery on a 64-core chip: NoC power share, Algorithm-1
convexity and CDOR deadlock freedom at scale, and the latency/power benefit
of an 8-core sprint on the bigger mesh."""

from repro.config import NoCConfig
from repro.core.cdor import CdorRouter
from repro.core.deadlock import check_deadlock_freedom
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator
from repro.power.activity import network_power
from repro.power.chip_power import ChipPowerModel
from repro.util.rng import stream
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG_8X8 = NoCConfig(mesh_width=8, mesh_height=8)


def structure_checks():
    rows = []
    for level in (4, 9, 16, 25, 37, 50, 64):
        topo = SprintTopology.for_level(8, 8, level)
        deadlock = check_deadlock_freedom(CdorRouter(topo))
        rows.append(
            (
                level,
                topo.is_orthogonally_convex(),
                topo.is_connected(),
                deadlock.acyclic,
                deadlock.channel_count,
            )
        )
    return rows


def network_benefit(level=8, rate=0.15):
    region = SprintTopology.for_level(8, 8, level)
    traffic = TrafficGenerator(list(region.active_nodes), rate,
                               CFG_8X8.packet_length_flits, seed=5)
    noc = run_simulation(region, traffic, CFG_8X8, routing="cdor",
                         warmup_cycles=300, measure_cycles=900)
    noc_power = network_power(noc, region, CFG_8X8)

    full = SprintTopology.for_level(8, 8, 64)
    endpoints = stream(1, "mesh64-mapping").sample(range(64), level)
    traffic2 = TrafficGenerator(endpoints, rate, CFG_8X8.packet_length_flits, seed=6)
    scattered = run_simulation(full, traffic2, CFG_8X8, routing="xy",
                               warmup_cycles=300, measure_cycles=900)
    full_power = network_power(scattered, full, CFG_8X8)
    return noc, noc_power, scattered, full_power


def test_extension_64core_structure(benchmark):
    rows = once(benchmark, structure_checks)
    body = format_table(
        ["level", "orthogonally convex", "connected", "deadlock-free", "channels"],
        [list(r) for r in rows],
    )
    share = ChipPowerModel(64).nominal_breakdown().share("noc")
    body += f"\n64-core nominal NoC power share: {100 * share:.1f} % (Fig. 3 trend continues)"
    report("Extension: Algorithm 1 + CDOR on an 8x8 mesh", body)

    assert all(convex and connected and acyclic for _, convex, connected, acyclic, _ in rows)
    # the dark-silicon trend continues past the paper's 32-core point
    assert share > ChipPowerModel(32).nominal_breakdown().share("noc")


def test_extension_64core_network_benefit(benchmark):
    noc, noc_power, scattered, full_power = once(benchmark, network_benefit)
    body = (
        f"8-core sprint on 64-node mesh, uniform 0.15 flits/cycle\n"
        f"NoC-sprinting: {noc.avg_latency:.1f} cycles, {noc_power.total * 1e3:.1f} mW "
        f"({noc_power.powered_router_count} routers)\n"
        f"random mapping: {scattered.avg_latency:.1f} cycles, "
        f"{full_power.total * 1e3:.1f} mW ({full_power.powered_router_count} routers)"
    )
    report("Extension: 64-core sprint network benefit", body)

    # scattering 8 cores over a 64-node mesh is far worse than on 16 nodes:
    # both the latency and the power gaps widen with mesh size
    assert noc.avg_latency < 0.7 * scattered.avg_latency
    assert noc_power.total < 0.25 * full_power.total
