"""Extension: run-time parallelism monitoring.

The paper assumes optimal levels are "learnt in advance or monitored
during run-time execution".  This bench runs the online doubling monitor
against every PARSEC profile with noisy throughput observations and
reports agreement with off-line profiling plus the trial-epoch cost."""

from repro.cmp.monitor import OnlineParallelismMonitor, noisy_profile_measure
from repro.cmp.workloads import all_profiles
from repro.util.tables import format_table

from benchmarks.common import report

NOISE = 0.03
SEEDS = (3, 17, 42)


def sweep():
    rows = []
    for profile in all_profiles():
        offline = profile.optimal_level()
        agreements = 0
        epochs = 0
        for seed in SEEDS:
            monitor = OnlineParallelismMonitor(samples_per_level=3)
            result = monitor.calibrate(noisy_profile_measure(profile, NOISE, seed))
            agreements += result.level == offline
            epochs += result.epochs
        rows.append((profile.name, offline, agreements, epochs / len(SEEDS)))
    return rows


def test_extension_online_monitoring(benchmark):
    rows = benchmark(sweep)
    body = format_table(
        ["benchmark", "off-line level", f"agreement (of {len(SEEDS)})", "mean epochs"],
        [list(r) for r in rows],
        float_format="{:.1f}",
    )
    agreement_rate = sum(r[2] for r in rows) / (len(rows) * len(SEEDS))
    body += f"\noverall agreement with off-line profiling: {100 * agreement_rate:.1f} %"
    report("Extension: online parallelism monitor vs off-line profiles", body)

    assert agreement_rate >= 0.9
    # serial workloads are decided cheaply: freqmine needs only 2 levels
    freqmine = next(r for r in rows if r[0] == "freqmine")
    assert freqmine[3] <= 2 * 3  # two levels x three samples
