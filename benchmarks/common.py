"""Shared helpers for the figure/table benchmark harness.

Every bench prints the rows/series the corresponding paper figure reports
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the *shape* of the result -- who wins, by roughly what factor,
where crossovers fall -- not the authors' absolute numbers.

Network sweeps go through the shared :class:`~repro.exec.SweepRunner`:
one result cache spans all bench modules in a pytest session, so figures
that revisit the same (topology, traffic, config) points -- e.g. Figs. 9
and 10, which simulate identical runs and read different axes -- are
served from cache instead of re-simulating.  Set ``REPRO_SWEEP_WORKERS=N``
to fan simulation points out over N processes; results are bit-identical
to the serial run.
"""

from __future__ import annotations

import functools
import os

from repro.core.system import NoCSprintingSystem
from repro.exec import ResultCache, SweepReport, SweepRunner
from repro.telemetry import Ledger


def report(title: str, body: str) -> None:
    """Print a figure reproduction block."""
    bar = "=" * max(len(title), 40)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def sweep_workers() -> int:
    """Worker-process count for sweeps (``REPRO_SWEEP_WORKERS``, default 1)."""
    return max(1, int(os.environ.get("REPRO_SWEEP_WORKERS", "1") or 1))


@functools.lru_cache(maxsize=1)
def shared_cache() -> ResultCache:
    """One simulation-result cache shared across bench modules."""
    return ResultCache()


@functools.lru_cache(maxsize=1)
def shared_ledger() -> Ledger:
    """One run ledger shared across bench modules.

    Every benchmark sweep leaves a ``bench``-labelled
    :class:`~repro.telemetry.ledger.RunRecord` under ``.repro/ledger``
    (``REPRO_LEDGER=0`` disables, ``REPRO_LEDGER_DIR`` relocates), so
    figure runs accumulate a history ``repro compare`` / ``repro
    regress`` can diff across sessions.
    """
    return Ledger()


@functools.lru_cache(maxsize=1)
def shared_system() -> NoCSprintingSystem:
    """One system instance shared across bench modules."""
    return NoCSprintingSystem(
        cache=shared_cache(), workers=sweep_workers(), ledger=shared_ledger()
    )


@functools.lru_cache(maxsize=1)
def shared_runner() -> SweepRunner:
    """One sweep runner (shared cache, env-configured workers)."""
    return SweepRunner(
        workers=sweep_workers(), cache=shared_cache(),
        ledger=shared_ledger(), ledger_label="bench",
    )


def run_specs(specs) -> SweepReport:
    """Run a batch of simulation specs through the shared sweep engine."""
    return shared_runner().run(specs)
