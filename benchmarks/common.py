"""Shared helpers for the figure/table benchmark harness.

Every bench prints the rows/series the corresponding paper figure reports
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the *shape* of the result -- who wins, by roughly what factor,
where crossovers fall -- not the authors' absolute numbers.
"""

from __future__ import annotations

import functools

from repro.core.system import NoCSprintingSystem


def report(title: str, body: str) -> None:
    """Print a figure reproduction block."""
    bar = "=" * max(len(title), 40)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@functools.lru_cache(maxsize=1)
def shared_system() -> NoCSprintingSystem:
    """One system instance shared across bench modules."""
    return NoCSprintingSystem()
