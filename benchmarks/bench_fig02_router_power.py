"""Figure 2: router power breakdown (dynamic vs leakage) while scaling the
operating voltage and frequency at 45 nm, 0.4 flits/cycle injection."""

from repro.config import NoCConfig
from repro.power.router_power import RouterPowerModel
from repro.power.technology import FIG2_OPERATING_POINTS
from repro.util.tables import format_table

from benchmarks.common import report

FIG2_CFG = NoCConfig(vcs_per_port=2)  # the paper's Fig. 2 router: 2 VCs x 4
INJECTION = 0.4


def sweep():
    rows = []
    for vdd, freq in FIG2_OPERATING_POINTS:
        model = RouterPowerModel(FIG2_CFG, vdd=vdd, frequency_hz=freq)
        b = model.breakdown_at_injection(INJECTION)
        rows.append((vdd, freq, b))
    return rows


def test_fig02_router_power_breakdown(benchmark):
    rows = benchmark(sweep)
    table = [
        [
            f"{vdd:.2f}V / {freq / 1e9:.1f}GHz",
            b.dynamic * 1e3,
            b.leakage * 1e3,
            100 * b.leakage_fraction,
        ]
        for vdd, freq, b in rows
    ]
    report(
        "Figure 2: router power breakdown vs V/f (45 nm, 0.4 flits/cycle)",
        format_table(
            ["operating point", "dynamic (mW)", "leakage (mW)", "leakage share (%)"],
            table,
        ),
    )

    shares = [b.leakage_fraction for _, _, b in rows]
    # leakage is significant at nominal, its share grows monotonically as
    # V/f scale down, and it overtakes dynamic power at the lowest corner
    assert shares[0] > 0.25
    assert shares == sorted(shares)
    assert shares[-1] > 0.5
    totals = [b.total for _, _, b in rows]
    assert totals == sorted(totals, reverse=True)
