"""Extension: multi-burst sprint scheduling.

The paper evaluates single bursts; interactive workloads issue sequences
whose sprints share one PCM budget.  This bench plays an interactive mix
under all three schemes and reports makespan, total completion time and
how often each scheme falls back to nominal mid-burst."""

from repro.cmp.workloads import get_profile
from repro.core.scheduler import Burst, SprintScheduler
from repro.util.tables import format_table

from benchmarks.common import once, report


def interactive_mix():
    return [
        Burst(get_profile("dedup"), arrival_s=0.0, work_s=3.0),
        Burst(get_profile("canneal"), arrival_s=0.5, work_s=3.0),
        Burst(get_profile("blackscholes"), arrival_s=1.0, work_s=4.0),
        Burst(get_profile("vips"), arrival_s=2.0, work_s=3.0),
        Burst(get_profile("streamcluster"), arrival_s=4.0, work_s=3.0),
        Burst(get_profile("x264"), arrival_s=10.0, work_s=2.0),
    ]


def run_comparison():
    return SprintScheduler().compare_schemes(interactive_mix())


def test_extension_burst_scheduling(benchmark):
    results = once(benchmark, run_comparison)
    rows = [
        [
            scheme,
            result.makespan_s,
            result.total_completion_s,
            result.fallback_count,
        ]
        for scheme, result in results.items()
    ]
    report(
        "Extension: interactive burst sequence under one PCM budget",
        format_table(
            ["scheme", "makespan (s)", "sum completion (s)", "nominal fallbacks"],
            rows,
            float_format="{:.2f}",
        ),
    )

    noc = results["noc_sprinting"]
    full = results["full_sprinting"]
    non = results["non_sprinting"]
    # NoC-sprinting wins both aggregate metrics
    assert noc.total_completion_s < full.total_completion_s < non.total_completion_s
    assert noc.makespan_s < non.makespan_s
    # full-sprinting exhausts the budget and limps home more often
    assert full.fallback_count > noc.fallback_count
