"""Section 4.4: sprint-duration extension.

Paper: NoC-sprinting slows thermal-capacitance depletion and increases the
(workload-usable) sprint duration by 55.4 % on average over PARSEC."""

import pytest

from repro.cmp.workloads import all_profiles
from repro.thermal.pcm import sprint_duration
from repro.util.tables import format_table

from benchmarks.common import report, shared_system


def sweep():
    system = shared_system()
    rows = []
    for profile in all_profiles():
        noc = system.evaluate(profile, "noc_sprinting")
        level = noc.level
        power = noc.chip_power.total
        thermal = sprint_duration(power)
        gain = system.sprint_duration_gain(profile)
        rows.append((profile.name, level, power, thermal, gain))
    return rows


def test_sprint_duration_extension(benchmark):
    rows = benchmark(sweep)
    table = [
        [name, level, power,
         "inf" if thermal == float("inf") else f"{thermal:.2f}",
         gain]
        for name, level, power, thermal, gain in rows
    ]
    mean_gain = sum(g for *_, g in rows) / len(rows)
    body = format_table(
        ["benchmark", "level", "sprint power (W)", "thermal budget (s)", "duration gain"],
        table,
        float_format="{:.2f}",
    )
    body += f"\nmean usable-duration gain: +{100 * (mean_gain - 1):.1f} % (paper +55.4 %)"
    report("Section 4.4: sprint duration extension", body)

    assert 100 * (mean_gain - 1) == pytest.approx(55.4, abs=8.0)
    # gains grow as the sprint level shrinks; full-level workloads gain nothing
    for name, level, power, thermal, gain in rows:
        if level == 16:
            assert gain == 1.0, name
        if level in (2, 4):
            assert gain > 1.0, name
