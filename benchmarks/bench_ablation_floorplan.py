"""Ablation: the thermal-aware floorplan's weight function and its cost.

Compares peak temperature across placements (identity, thermal-aware with
the paper's inverse-Hamming weights, thermal-aware with uniform weights)
and quantifies the wiring cost the floorplan pays."""

from repro.core.floorplanning import (
    Floorplan,
    identity_floorplan,
    thermal_aware_floorplan,
)
from repro.core.topological import SprintTopology, sprint_order
from repro.power.chip_power import ChipPowerModel
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.grid import ThermalGrid
from repro.util.directions import MESH_DIRECTIONS
from repro.util.geometry import euclidean, node_to_coord
from repro.util.tables import format_table

from benchmarks.common import once, report


def uniform_weight_floorplan(width=4, height=4, master=0) -> Floorplan:
    """Algorithm 3 with w_ij = 1 (ignores logical proximity)."""
    n = width * height
    order = sprint_order(width, height, master)
    rank = {node: i for i, node in enumerate(order)}

    def neighbors(node):
        coord = node_to_coord(node, width)
        result = []
        for d in MESH_DIRECTIONS:
            c = coord + d.offset
            if 0 <= c.x < width and 0 <= c.y < height:
                result.append(c.y * width + c.x)
        return sorted(result, key=lambda m: rank[m])

    position = {master: master}
    placed = [master]
    free = [s for s in range(n) if s != master]
    queued = {master}
    queue = list(neighbors(master))
    queued.update(queue)
    while queue:
        node = queue.pop(0)
        best, best_sum = free[0], -1.0
        for slot in free:
            total = sum(
                euclidean(node_to_coord(slot, width), node_to_coord(position[j], width))
                for j in placed
            )
            if total > best_sum:
                best, best_sum = slot, total
        position[node] = best
        free.remove(best)
        placed.append(node)
        for m in neighbors(node):
            if m not in queued:
                queue.append(m)
                queued.add(m)
    return Floorplan(width, height, tuple(position[k] for k in range(n)))


def compare():
    grid = ThermalGrid(4, 4, 4)
    chip = ChipPowerModel(16)
    plans = {
        "identity": identity_floorplan(4, 4),
        "inverse-Hamming (paper)": thermal_aware_floorplan(4, 4),
        "uniform weights": uniform_weight_floorplan(),
    }
    rows = []
    for name, fp in plans.items():
        peaks = []
        for level in (2, 4, 8):
            topo = SprintTopology.for_level(4, 4, level)
            peaks.append(grid.peak_temperature(sprint_tile_powers(topo, chip, fp)))
        rows.append((name, *peaks, fp.total_wire_length()))
    return rows


def test_ablation_floorplan_weights(benchmark):
    rows = once(benchmark, compare)
    body = format_table(
        ["placement", "peak@2 (K)", "peak@4 (K)", "peak@8 (K)", "total wire (pitches)"],
        [list(r) for r in rows],
        float_format="{:.2f}",
    )
    report("Ablation: floorplan weight function", body)

    by_name = {r[0]: r for r in rows}
    identity = by_name["identity"]
    paper = by_name["inverse-Hamming (paper)"]
    # the paper's floorplan is cooler than identity at every sprint level...
    assert all(paper[i] < identity[i] for i in (1, 2, 3))
    # ...at the cost of longer wires
    assert paper[4] > identity[4]
    # inverse-Hamming weighting beats weight-free spreading at the levels
    # that actually sprint together (it optimizes for them specifically)
    uniform = by_name["uniform weights"]
    assert paper[2] <= uniform[2] + 0.5  # level 4, the headline case
