"""Extension: the lease-based sweep fabric under churn vs the process pool.

The fabric (docs/robustness.md) decouples scheduling from execution: the
coordinator persists the point set as a durable lease table and workers
-- local or externally joined ``repro worker`` processes -- claim points
under heartbeat-renewed leases.  This bench measures what that buys and
what it costs:

- ``pool``      -- the classic in-process ``SweepRunner`` dispatch;
- ``fabric``    -- the same grid through the lease fabric (results must
  be bit-identical to the pool run);
- ``fabric+kill9`` -- the same fabric while every worker SIGKILLs itself
  0.25-0.55 s after starting: leases expire, points re-let, and the
  sweep still completes every point with the audit invariants holding.

Worker processes cost ~1 s each to spawn, so the fabric is expected to
*lose* the wall-clock race on a small grid; the gates here are about
survival (zero lost points, clean audit), not speed.  The table is
mirrored to ``BENCH_fabric.json`` for CI to archive.
"""

import json
import os
import tempfile
import time

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import FabricConfig, ResultCache, SweepRunner, audit_queue
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG = NoCConfig()
OUTPUT = "BENCH_fabric.json"
LEVELS = (2, 4, 8, 16)
RATES = (0.1, 0.2, 0.3)


def _grid():
    specs = []
    for level in LEVELS:
        topo = SprintTopology.for_level(CFG.mesh_width, CFG.mesh_height, level)
        for rate in RATES:
            specs.append(SimulationSpec(
                topology=topo,
                traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                                    CFG.packet_length_flits, "uniform", seed=0),
                config=CFG,
                routing="cdor" if level < 16 else "xy",
                warmup_cycles=200,
                measure_cycles=800,
                drain_cycles=1500,
                backend="reference",  # slow enough that kill-9 lands mid-lease
            ))
    return specs


def _fabric_run(specs, root, name, chaos=None, workers=4):
    previous = os.environ.pop("REPRO_SWEEP_CHAOS", None)
    if chaos is not None:
        os.environ["REPRO_SWEEP_CHAOS"] = chaos
    try:
        config = FabricConfig(queue_dir=os.path.join(root, name, "queue"),
                              workers=workers, lease_ttl_s=3.0,
                              quarantine_after=100)
        cache = ResultCache(directory=os.path.join(root, name, "cache"))
        runner = SweepRunner(workers=workers, fabric=config, cache=cache)
        start = time.perf_counter()
        rep = runner.run(specs)
        wall_s = time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_SWEEP_CHAOS", None)
        if previous is not None:
            os.environ["REPRO_SWEEP_CHAOS"] = previous
    audit = audit_queue(config.queue_dir)
    return rep, wall_s, audit


def contest():
    specs = _grid()
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as root:
        runner = SweepRunner(workers=2, cache=ResultCache())
        start = time.perf_counter()
        pool = runner.run(specs)
        rows.append(("pool", pool, time.perf_counter() - start, None))

        clean, wall_s, audit = _fabric_run(specs, root, "clean")
        rows.append(("fabric", clean, wall_s, audit))

        churn, wall_s, audit = _fabric_run(specs, root, "churn",
                                           chaos="kill9:0.3:0.4")
        rows.append(("fabric+kill9", churn, wall_s, audit))

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump({
            "grid": {"levels": LEVELS, "rates": RATES,
                     "points": len(specs), "backend": "reference"},
            "modes": {
                name: {
                    "wall_s": wall_s,
                    "ok": rep.ok,
                    "points_done": len(rep.points),
                    "failures": len(rep.failures),
                    "fabric": None if rep.fabric is None else {
                        "workers_spawned": rep.fabric.workers_spawned,
                        "worker_deaths": rep.fabric.worker_deaths,
                        "claims": rep.fabric.claims,
                        "expired": rep.fabric.expired,
                        "requeued": rep.fabric.requeued,
                        "duplicates": rep.fabric.duplicates,
                    },
                    "audit_ok": None if audit is None else audit.ok,
                }
                for name, rep, wall_s, audit in rows
            },
        }, handle, indent=1, sort_keys=True)
    return rows


def _render(rows):
    table = []
    for name, rep, wall_s, audit in rows:
        fab = rep.fabric
        table.append([
            name, wall_s, len(rep.points), len(rep.failures),
            "-" if fab is None else fab.workers_spawned,
            "-" if fab is None else fab.worker_deaths,
            "-" if fab is None else fab.requeued,
            "-" if audit is None else ("ok" if audit.ok else "VIOLATED"),
        ])
    return format_table(
        ["mode", "wall s", "done", "failed", "spawned", "deaths",
         "requeued", "audit"],
        table, float_format="{:.2f}",
    )


def test_extension_sweep_fabric(benchmark):
    rows = once(benchmark, contest)
    report("Extension: lease-based sweep fabric vs process pool", _render(rows))
    results = {name: rep for name, rep, _, _ in rows}
    audits = {name: audit for name, _, _, audit in rows}
    total = len(LEVELS) * len(RATES)

    # every mode completes the full grid with zero lost points
    for name, rep in results.items():
        assert rep.ok, f"{name}: {rep.summary()}"
        assert rep.total_points == total, name
        assert len(rep.points) == total and not rep.failures, name

    # the fabric changes scheduling, never results: bit-for-bit parity
    for mine, theirs in zip(results["fabric"].points, results["pool"].points):
        assert mine.result == theirs.result

    # churn really happened, and the lease ledger still balances: a lease
    # only requeues when it expired, and every point records done once
    fab = results["fabric+kill9"].fabric
    assert fab.workers_spawned >= 4
    assert fab.worker_deaths >= 1
    assert fab.requeued <= fab.expired
    for name in ("fabric", "fabric+kill9"):
        assert audits[name].ok, audits[name].summary()
        assert audits[name].done == total, name
