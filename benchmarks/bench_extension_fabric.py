"""Extension: the lease-based sweep fabric under churn vs the process pool.

The fabric (docs/robustness.md) decouples scheduling from execution: the
coordinator persists the point set as a durable lease table and workers
-- local or externally joined ``repro worker`` processes -- claim points
under heartbeat-renewed leases.  This bench measures what that buys and
what it costs:

- ``pool``      -- the classic in-process ``SweepRunner`` dispatch;
- ``fabric``    -- the same grid through the lease fabric (results must
  be bit-identical to the pool run);
- ``fabric+kill9`` -- the same fabric while every worker SIGKILLs itself
  0.25-0.55 s after starting: leases expire, points re-let, and the
  sweep still completes every point with the audit invariants holding;
- ``fabric+watch`` -- the clean fabric again with the full observability
  plane attached mid-flight (``QueueWatcher`` refresh loop + Prometheus
  exporter + HTML dashboard writes): the watcher's accumulated busy time
  must stay under 2% of the sweep wall (the live plane is read-only --
  event-log tailing and lease-dir scans -- so it must be near free), and
  its final view must agree with the ``SweepReport`` exactly.

Worker processes cost ~1 s each to spawn, so the fabric is expected to
*lose* the wall-clock race on a small grid; the gates here are about
survival (zero lost points, clean audit) and observability overhead,
not speed.  The table is mirrored to ``BENCH_fabric.json`` for CI to
archive.
"""

import json
import os
import tempfile
import threading
import time

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import FabricConfig, QueueError, ResultCache, SweepRunner, audit_queue
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.telemetry.live import (
    LiveMetricsExporter,
    MetricsServer,
    QueueWatcher,
    render_html,
    write_html_atomic,
)
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG = NoCConfig()
OUTPUT = "BENCH_fabric.json"
LEVELS = (2, 4, 8, 16)
RATES = (0.1, 0.2, 0.3)


def _grid():
    specs = []
    for level in LEVELS:
        topo = SprintTopology.for_level(CFG.mesh_width, CFG.mesh_height, level)
        for rate in RATES:
            specs.append(SimulationSpec(
                topology=topo,
                traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                                    CFG.packet_length_flits, "uniform", seed=0),
                config=CFG,
                routing="cdor" if level < 16 else "xy",
                warmup_cycles=200,
                measure_cycles=800,
                drain_cycles=1500,
                backend="reference",  # slow enough that kill-9 lands mid-lease
            ))
    return specs


class _Watcher:
    """The full live plane on a background thread, accounting its cost.

    Mirrors what ``repro watch --serve`` attaches to a running sweep:
    incremental event tailing, lease scans, Prometheus exposition, and
    atomic HTML dashboard rewrites.  ``busy_s`` accumulates only the
    time the thread spends *working* (not sleeping), so the <2% overhead
    gate is deterministic even when worker churn makes raw sweep walls
    noisy.
    """

    def __init__(self, queue_dir, html_path, interval_s=1.0):
        # interval_s matches the `repro watch` default refresh cadence
        self.queue_dir = queue_dir
        self.html_path = html_path
        self.interval_s = interval_s
        self.busy_s = 0.0
        self.refreshes = 0
        self.view = None
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _refresh(self, watcher, exporter):
        begin = time.perf_counter()
        try:
            view = watcher.refresh()
        except QueueError:
            view = None  # coordinator has not seeded the queue yet
        if view is not None:
            exporter.update(view)
            write_html_atomic(self.html_path, render_html(view))
            self.view = view
            self.refreshes += 1
        self.busy_s += time.perf_counter() - begin
        return exporter

    def _run(self):
        exporter = LiveMetricsExporter()
        server = MetricsServer(exporter.render).start()
        watcher = QueueWatcher(self.queue_dir)
        try:
            import urllib.request
            while not self._stop.is_set():
                self._refresh(watcher, exporter)
                if self.refreshes and self.scrapes < 3:  # a live scraper
                    begin = time.perf_counter()
                    urllib.request.urlopen(
                        f"http://{server.address}/metrics", timeout=5).read()
                    self.scrapes += 1
                    self.busy_s += time.perf_counter() - begin
                self._stop.wait(self.interval_s)
            self._refresh(watcher, exporter)  # final post-sweep snapshot
        finally:
            server.stop()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=30)


def _fabric_run(specs, root, name, chaos=None, workers=4):
    previous = os.environ.pop("REPRO_SWEEP_CHAOS", None)
    if chaos is not None:
        os.environ["REPRO_SWEEP_CHAOS"] = chaos
    try:
        config = FabricConfig(queue_dir=os.path.join(root, name, "queue"),
                              workers=workers, lease_ttl_s=3.0,
                              quarantine_after=100)
        cache = ResultCache(directory=os.path.join(root, name, "cache"))
        runner = SweepRunner(workers=workers, fabric=config, cache=cache)
        start = time.perf_counter()
        rep = runner.run(specs)
        wall_s = time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_SWEEP_CHAOS", None)
        if previous is not None:
            os.environ["REPRO_SWEEP_CHAOS"] = previous
    audit = audit_queue(config.queue_dir)
    return rep, wall_s, audit


def contest():
    specs = _grid()
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as root:
        runner = SweepRunner(workers=2, cache=ResultCache())
        start = time.perf_counter()
        pool = runner.run(specs)
        rows.append(("pool", pool, time.perf_counter() - start, None))

        clean, wall_s, audit = _fabric_run(specs, root, "clean")
        rows.append(("fabric", clean, wall_s, audit))

        churn, wall_s, audit = _fabric_run(specs, root, "churn",
                                           chaos="kill9:0.3:0.4")
        rows.append(("fabric+kill9", churn, wall_s, audit))

        # the same clean sweep with the live plane attached mid-flight
        watch_dir = os.path.join(root, "watched")
        os.makedirs(watch_dir, exist_ok=True)
        with _Watcher(os.path.join(watch_dir, "queue"),
                      os.path.join(watch_dir, "dashboard.html")) as watcher:
            watched, wall_s, audit = _fabric_run(specs, root, "watched")
        rows.append(("fabric+watch", watched, wall_s, audit))
        view = watcher.view
        watch_info = {
            "busy_s": round(watcher.busy_s, 4),
            "busy_pct": round(100.0 * watcher.busy_s / wall_s, 3),
            "refreshes": watcher.refreshes,
            "scrapes": watcher.scrapes,
            "wall_s": wall_s,
            "unwatched_wall_s": rows[1][2],
            "totals_match": (
                view is not None
                and view.total == watched.total_points
                and view.done == len(watched.points)
                and view.failed == len(watched.failures)
                and view.complete
            ),
        }

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump({
            "grid": {"levels": LEVELS, "rates": RATES,
                     "points": len(specs), "backend": "reference"},
            "watch": watch_info,
            "modes": {
                name: {
                    "wall_s": wall_s,
                    "ok": rep.ok,
                    "points_done": len(rep.points),
                    "failures": len(rep.failures),
                    "fabric": None if rep.fabric is None else {
                        "workers_spawned": rep.fabric.workers_spawned,
                        "worker_deaths": rep.fabric.worker_deaths,
                        "claims": rep.fabric.claims,
                        "expired": rep.fabric.expired,
                        "requeued": rep.fabric.requeued,
                        "duplicates": rep.fabric.duplicates,
                    },
                    "audit_ok": None if audit is None else audit.ok,
                }
                for name, rep, wall_s, audit in rows
            },
        }, handle, indent=1, sort_keys=True)
    return rows, watch_info


def _render(rows):
    table = []
    for name, rep, wall_s, audit in rows:
        fab = rep.fabric
        table.append([
            name, wall_s, len(rep.points), len(rep.failures),
            "-" if fab is None else fab.workers_spawned,
            "-" if fab is None else fab.worker_deaths,
            "-" if fab is None else fab.requeued,
            "-" if audit is None else ("ok" if audit.ok else "VIOLATED"),
        ])
    return format_table(
        ["mode", "wall s", "done", "failed", "spawned", "deaths",
         "requeued", "audit"],
        table, float_format="{:.2f}",
    )


def test_extension_sweep_fabric(benchmark):
    rows, watch_info = once(benchmark, contest)
    report("Extension: lease-based sweep fabric vs process pool", _render(rows))
    report(
        "Extension: live observability plane overhead",
        f"watcher busy {watch_info['busy_s']:.3f}s over "
        f"{watch_info['wall_s']:.2f}s sweep wall "
        f"({watch_info['busy_pct']:.2f}%), {watch_info['refreshes']} "
        f"refreshes, {watch_info['scrapes']} scrapes, totals_match="
        f"{watch_info['totals_match']}",
    )
    results = {name: rep for name, rep, _, _ in rows}
    audits = {name: audit for name, _, _, audit in rows}
    total = len(LEVELS) * len(RATES)

    # every mode completes the full grid with zero lost points
    for name, rep in results.items():
        assert rep.ok, f"{name}: {rep.summary()}"
        assert rep.total_points == total, name
        assert len(rep.points) == total and not rep.failures, name

    # the fabric changes scheduling, never results: bit-for-bit parity
    # (watched or not -- the live plane is read-only)
    for mode in ("fabric", "fabric+watch"):
        for mine, theirs in zip(results[mode].points, results["pool"].points):
            assert mine.result == theirs.result

    # churn really happened, and the lease ledger still balances: a lease
    # only requeues when it expired, and every point records done once
    fab = results["fabric+kill9"].fabric
    assert fab.workers_spawned >= 4
    assert fab.worker_deaths >= 1
    assert fab.requeued <= fab.expired
    for name in ("fabric", "fabric+kill9", "fabric+watch"):
        assert audits[name].ok, audits[name].summary()
        assert audits[name].done == total, name

    # the observability plane is near free: the watcher thread (tailing,
    # lease scans, HTML writes, Prometheus scrapes) spends <2% of the
    # sweep wall actually working, and its final view agrees with the
    # SweepReport exactly
    assert watch_info["refreshes"] >= 1
    assert watch_info["totals_match"], watch_info
    assert watch_info["busy_pct"] < 2.0, watch_info
