"""Extension: spatial co-scheduling of two sprints.

Two workloads sprint simultaneously on disjoint convex regions grown from
opposite corners, each keeping CDOR's guarantees.  Compared against
time-multiplexing the same two bursts through a single sprint controller."""

from repro.cmp.workloads import get_profile
from repro.core.cdor import CdorRouter
from repro.core.coschedule import co_sprint_regions
from repro.core.deadlock import check_deadlock_freedom
from repro.core.scheduler import Burst, SprintScheduler
from repro.power.chip_power import ChipPowerModel
from repro.util.tables import format_table

from benchmarks.common import once, report

WORK_S = 3.0


def run_comparison():
    dedup = get_profile("dedup")
    stream = get_profile("streamcluster")

    # spatial: both sprint at once on disjoint regions
    sprints = co_sprint_regions(4, 4, [(0, 4), (15, 2)])
    regions = {s.master: s for s in sprints}
    spatial_time = max(
        WORK_S * dedup.relative_time(4),
        WORK_S * stream.relative_time(2),
    )
    chip = ChipPowerModel(16)
    p = chip.params
    active = 4 + 2
    spatial_power = (
        active * p.core_active_w
        + (16 - active) * p.core_gated_w
        + 16 * p.l2_bank_w
        + chip.memory_controller_count() * p.memory_controller_w
        + active / 16 * 16 * p.noc_per_node_w
        + p.others_w
    )

    # temporal: one after the other through the controller
    scheduler = SprintScheduler()
    temporal = scheduler.run(
        [Burst(dedup, 0.0, WORK_S), Burst(stream, 0.0, WORK_S)],
        "noc_sprinting",
    )
    deadlock_ok = all(
        check_deadlock_freedom(CdorRouter(s.topology)).acyclic for s in sprints
    )
    return regions, spatial_time, spatial_power, temporal, deadlock_ok


def test_extension_co_scheduling(benchmark):
    regions, spatial_time, spatial_power, temporal, deadlock_ok = once(
        benchmark, run_comparison
    )
    rows = [
        ["spatial (co-scheduled)", spatial_time, spatial_power],
        ["temporal (one at a time)", temporal.makespan_s,
         ChipPowerModel(16).sprint_chip_power(4, "noc_sprinting").total],
    ]
    body = format_table(
        ["strategy", "makespan (s)", "peak chip power (W)"],
        rows,
        float_format="{:.2f}",
    )
    body += "\nregions: " + ", ".join(
        f"master {m}: {list(s.topology.active_nodes)}" for m, s in sorted(regions.items())
    )
    body += f"\nper-region CDOR deadlock freedom: {deadlock_ok}"
    report("Extension: spatial co-scheduling of dedup + streamcluster", body)

    assert deadlock_ok
    # the regions are disjoint and both convex
    nodes0 = set(regions[0].topology.active_nodes)
    nodes15 = set(regions[15].topology.active_nodes)
    assert not (nodes0 & nodes15)
    # co-scheduling finishes sooner than time-multiplexing the two bursts
    assert spatial_time < temporal.makespan_s
