"""Extension: fault-aware sprinting.

Hard faults accumulate over a dark-silicon chip's lifetime.  This bench
injects fault sets of growing size and shows the fault-aware Algorithm 1
still produces convex, connected, deadlock-free regions -- with graceful
degradation of region quality (average hop distance) rather than failure."""

from repro.core.cdor import CdorRouter
from repro.core.deadlock import check_deadlock_freedom
from repro.core.faults import FaultError, fault_aware_topology
from repro.util.geometry import average_pairwise_manhattan
from repro.util.rng import stream
from repro.util.tables import format_table

from benchmarks.common import once, report

LEVEL = 8
SEEDS = range(6)


def sweep():
    rows = []
    for fault_count in (0, 1, 2, 3, 4):
        hops = []
        feasible = 0
        deadlock_free = True
        for seed in SEEDS:
            faults = set(stream(seed, "faults").sample(range(1, 16), fault_count))
            try:
                topo = fault_aware_topology(4, 4, LEVEL, faults)
            except FaultError:
                continue
            feasible += 1
            hops.append(average_pairwise_manhattan(topo.coords))
            deadlock_free &= check_deadlock_freedom(CdorRouter(topo)).acyclic
        rows.append(
            (
                fault_count,
                feasible,
                len(list(SEEDS)),
                sum(hops) / len(hops) if hops else float("nan"),
                deadlock_free,
            )
        )
    return rows


def test_extension_fault_aware_sprinting(benchmark):
    rows = once(benchmark, sweep)
    body = format_table(
        ["faults", "feasible", "of", "avg region hops", "all deadlock-free"],
        [list(r) for r in rows],
        float_format="{:.2f}",
    )
    report(f"Extension: fault-aware {LEVEL}-core sprinting", body)

    # fault-free case is Algorithm 1 exactly
    assert rows[0][1] == len(list(SEEDS))
    # every feasible faulty region stayed deadlock-free
    assert all(r[4] for r in rows)
    # small fault counts stay overwhelmingly feasible
    assert rows[1][1] >= len(list(SEEDS)) - 1
    # degradation is graceful: hop distance grows slowly with fault count
    clean = rows[0][3]
    worst = max(r[3] for r in rows if r[1] > 0)
    assert worst < 1.6 * clean
