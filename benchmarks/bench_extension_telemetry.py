"""Extension: telemetry overhead budget.

The telemetry layer promises to be effectively free when off: instrumented
code holds ``None`` or no-op singletons, so a sweep without ``--trace``
must run at the speed it ran before instrumentation existed.  This bench
measures one simulation three ways -- uninstrumented baseline, a
*disabled* :class:`~repro.telemetry.Telemetry` bundle, and a fully
*enabled* bundle with periodic sampling -- with interleaved min-of-N
timing (the interleave cancels drift, the min discards scheduler noise),
asserts the disabled overhead stays under the 2% budget, and writes the
numbers to ``BENCH_telemetry.json`` for CI to archive."""

import json
import time

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import simulate
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.telemetry import Telemetry
from repro.util.tables import format_table

from benchmarks.common import once, report

ROUNDS = 7
SAMPLE_INTERVAL = 200
OVERHEAD_BUDGET_PCT = 2.0
OUTPUT = "BENCH_telemetry.json"


def bench_spec() -> SimulationSpec:
    cfg = NoCConfig()
    topo = SprintTopology.for_level(4, 4, 8)
    return SimulationSpec(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), 0.15,
                            cfg.packet_length_flits, "uniform", seed=3),
        config=cfg, routing="cdor",
        warmup_cycles=300, measure_cycles=1500, drain_cycles=4000,
    )


def measure():
    spec = bench_spec()
    variants = {
        "baseline": lambda: None,
        "disabled": Telemetry.disabled,
        "enabled": lambda: Telemetry(sample_interval=SAMPLE_INTERVAL),
    }
    for make in variants.values():  # warm every code path before timing
        simulate(spec, telemetry=make())
    best = {name: float("inf") for name in variants}
    for _ in range(ROUNDS):
        for name, make in variants.items():
            telemetry = make()  # fresh bundle: no event-list accumulation
            start = time.perf_counter()
            simulate(spec, telemetry=telemetry)
            best[name] = min(best[name], time.perf_counter() - start)
    overhead = {
        name: 100.0 * (best[name] - best["baseline"]) / best["baseline"]
        for name in ("disabled", "enabled")
    }
    payload = {
        "baseline_s": best["baseline"],
        "disabled_s": best["disabled"],
        "enabled_s": best["enabled"],
        "disabled_overhead_pct": overhead["disabled"],
        "enabled_overhead_pct": overhead["enabled"],
        "rounds": ROUNDS,
        "sample_interval_cycles": SAMPLE_INTERVAL,
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return payload


def test_extension_telemetry_overhead(benchmark):
    payload = once(benchmark, measure)
    body = format_table(
        ["variant", "best of 7 (ms)", "overhead %"],
        [
            ["baseline (telemetry=None)", payload["baseline_s"] * 1e3, 0.0],
            ["disabled bundle", payload["disabled_s"] * 1e3,
             payload["disabled_overhead_pct"]],
            [f"enabled (sample every {SAMPLE_INTERVAL} cyc)",
             payload["enabled_s"] * 1e3, payload["enabled_overhead_pct"]],
        ],
        float_format="{:.2f}",
    )
    report("Extension: telemetry overhead budget", body)
    print(f"    machine-readable copy: {OUTPUT}")

    # the contract docs/observability.md quotes: disabled telemetry is
    # inside the noise floor of an uninstrumented run
    assert payload["disabled_overhead_pct"] < OVERHEAD_BUDGET_PCT
    # enabled telemetry must stay usable too -- an order-of-magnitude
    # slowdown would make --trace pointless on real sweeps
    assert payload["enabled_overhead_pct"] < 50.0
