"""Ablation: master-node placement.

The paper picks the top-left corner (closest to the memory controller) but
lists the chip centre and the OS core as alternatives.  This bench compares
corner vs centre masters on region compactness, hotspot-to-MC distance and
deadlock freedom."""

from repro.core.deadlock import check_all_sprint_levels
from repro.core.topological import SprintTopology
from repro.util.geometry import Coord, average_pairwise_manhattan, manhattan, node_to_coord
from repro.util.tables import format_table

from benchmarks.common import once, report

MC_COORD = Coord(0, 0)  # the memory controller sits at the top-left corner


def compare_masters():
    rows = []
    for label, master in (("corner (paper)", 0), ("centre", 5), ("far corner", 15)):
        compact = []
        mc_dist = []
        for level in (2, 4, 8):
            topo = SprintTopology.for_level(4, 4, level, master)
            compact.append(average_pairwise_manhattan(topo.coords))
            mc_dist.append(
                sum(manhattan(c, MC_COORD) for c in topo.coords) / level
            )
        deadlock_free = all(
            bool(r) for r in check_all_sprint_levels(4, 4, master).values()
        )
        rows.append((label, master, *compact, *mc_dist, deadlock_free))
    return rows


def test_ablation_master_placement(benchmark):
    rows = once(benchmark, compare_masters)
    body = format_table(
        ["placement", "node", "hops@2", "hops@4", "hops@8",
         "MC dist@2", "MC dist@4", "MC dist@8", "deadlock-free"],
        [list(r) for r in rows],
        float_format="{:.2f}",
    )
    report("Ablation: master-node placement", body)

    by_label = {r[0]: r for r in rows}
    corner = by_label["corner (paper)"]
    centre = by_label["centre"]
    far = by_label["far corner"]
    # every placement stays deadlock-free (the paper's generality claim)
    assert all(r[-1] for r in rows)
    # the corner master keeps the sprint region closest to the MC at every
    # level -- the reason the paper picks it
    assert corner[5] < centre[5] < far[5]
    assert corner[6] < centre[6] < far[6]
    assert corner[7] <= centre[7] < far[7]
    # corner regions are never less compact than centre regions (the square
    # growth pattern from a corner is as tight as it gets on a small mesh)
    assert corner[3] <= centre[3] and corner[4] <= centre[4]
