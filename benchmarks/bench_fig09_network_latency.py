"""Figure 9: average network latency running PARSEC, full-sprinting vs
NoC-sprinting.  Paper: 24.5 % average latency reduction."""

from repro.cmp.workloads import all_profiles
from repro.util.tables import format_table

from benchmarks.common import once, report, run_specs, shared_system

WARMUP = 300
MEASURE = 1200
SCHEME_PAIR = ("noc_sprinting", "full_sprinting")


def paired_specs():
    """(profile, scheme) labels plus their simulation specs, in lockstep."""
    system = shared_system()
    labels, specs = [], []
    for profile in all_profiles():
        level = system.scheme_level(profile, "noc_sprinting")
        if level < 2:
            continue  # a level-1 workload has no network traffic to compare
        for scheme in SCHEME_PAIR:
            labels.append((profile, level, scheme))
            specs.append(system.simulation_spec(
                profile, scheme, warmup_cycles=WARMUP, measure_cycles=MEASURE
            ))
    return labels, specs


def sweep():
    system = shared_system()
    labels, specs = paired_specs()
    results = run_specs(specs)
    evals = {
        (profile.name, scheme): system.network_evaluation_for(spec, sim, scheme)
        for (profile, _, scheme), spec, sim in zip(labels, specs, results.results)
    }
    rows = []
    for profile, level, scheme in labels:
        if scheme != "noc_sprinting":
            continue
        noc = evals[(profile.name, "noc_sprinting")]
        full = evals[(profile.name, "full_sprinting")]
        rows.append((profile.name, level, full.avg_latency, noc.avg_latency))
    return rows


def test_fig09_network_latency(benchmark):
    rows = once(benchmark, sweep)
    table = [
        [name, level, full, noc, 100 * (1 - noc / full)]
        for name, level, full, noc in rows
    ]
    mean_reduction = sum(r[-1] for r in table) / len(table)
    body = format_table(
        ["benchmark", "level", "full-sprint (cycles)", "NoC-sprint (cycles)", "reduction %"],
        table,
        float_format="{:.1f}",
    )
    body += f"\nmean latency reduction: {mean_reduction:.1f} % (paper 24.5 %)"
    report("Figure 9: average network latency on PARSEC", body)

    assert 15.0 < mean_reduction < 40.0
    for name, level, full, noc in rows:
        if level == 16:
            assert abs(full - noc) < 1e-9  # identical networks
        else:
            assert noc < full, name
