"""Extension: burst energy and energy-delay across sprinting schemes.

Combines Figure 7 (time) with Figure 8/10 (power) into the efficiency
metrics the paper implies but never tabulates: per-burst chip energy, EDP
and ED2P."""

from repro.cmp.workloads import all_profiles
from repro.power.energy import energy_comparison
from repro.util.charts import bar_chart
from repro.util.tables import format_table

from benchmarks.common import report, shared_system


def sweep():
    system = shared_system()
    rows = []
    for profile in all_profiles():
        reports = energy_comparison(system, profile)
        rows.append((profile.name, reports))
    return rows


def test_extension_energy_metrics(benchmark):
    rows = benchmark(sweep)
    table = []
    for name, reports in rows:
        non = reports["non_sprinting"]
        full = reports["full_sprinting"]
        noc = reports["noc_sprinting"]
        table.append([name, non.energy_j, full.energy_j, noc.energy_j,
                      noc.edp_js, full.edp_js])
    body = format_table(
        ["benchmark", "E(non) J", "E(full) J", "E(noc) J",
         "EDP(noc) Js", "EDP(full) Js"],
        table,
        float_format="{:.1f}",
    )
    total_full = sum(r[2] for r in table)
    total_noc = sum(r[3] for r in table)
    body += (
        f"\nsuite energy: NoC-sprinting {total_noc:.0f} J vs "
        f"full-sprinting {total_full:.0f} J "
        f"({100 * (1 - total_noc / total_full):.1f} % saving)\n\n"
    )
    body += bar_chart(
        {name: reports["noc_sprinting"].energy_j for name, reports in rows},
        title="per-burst energy under NoC-sprinting (J)",
    )
    report("Extension: energy and energy-delay by scheme", body)

    # NoC-sprinting more than halves suite energy vs full-sprinting
    assert total_noc < 0.5 * total_full
    # and wins EDP on every benchmark (never slower AND never hungrier)
    for name, reports in rows:
        assert reports["noc_sprinting"].edp_js <= reports["full_sprinting"].edp_js + 1e-9, name
