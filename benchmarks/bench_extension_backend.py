"""Extension: simulation-backend speedup and equivalence gate.

The vectorized backend exists for one reason -- to make large sweeps
cheap -- and is only allowed to exist under one condition: it must return
the *same bits* as the reference simulator on every run it accepts.  This
bench runs the full Figure 9 spec grid (every PARSEC workload under both
sprinting schemes) through each backend, then a *faulted* variant of the
same grid through ``backend="auto"`` (which resolves to the fast path now
that it carries the full capability set), times every pass wall-clock,
checks every result field pairwise, and writes the numbers to
``BENCH_backend.json`` for CI to archive.

Gates (CI fails on any):

- wall-clock speedup of the vectorized pass over the reference pass must
  be at least ``MIN_SPEEDUP`` (3x; the acceptance target is 5x with the
  native kernel, but CI runners are noisy and may lack a C compiler, so
  the gate allows the pure-Python fallback some slack);
- the faulted grid through ``backend="auto"`` must clear the same 3x bar
  -- fault parity that is not fast would leave the resilience sweeps on
  the slow engine;
- the largest per-field divergence across all points must not exceed
  ``MAX_DELTA`` (1e-9 -- effectively bit-identical; integer fields,
  fault/reconfiguration counters included, must match exactly).
"""

import dataclasses
import json
import time

from repro.noc.sim import simulate
from repro.noc.spec import FaultEvent, FaultSchedule
from repro.util.tables import format_table

from benchmarks.common import once, report
from benchmarks.bench_fig09_network_latency import paired_specs

MIN_SPEEDUP = 3.0
MAX_DELTA = 1e-9
OUTPUT = "BENCH_backend.json"

_FLOAT_FIELDS = ("avg_latency", "avg_hops", "p50_latency", "p95_latency",
                 "p99_latency", "offered_flits_per_cycle",
                 "accepted_flits_per_cycle")
_INT_FIELDS = ("max_latency", "packets_measured", "packets_ejected",
               "cycles_run", "measure_cycles", "endpoint_count", "saturated",
               "packets_dropped", "packets_retransmitted", "packets_rerouted",
               "reconfigurations", "min_region_level")


def _timed_pass(specs, backend):
    """Run every spec on one backend; one wall-clock for the whole grid."""
    start = time.perf_counter()
    results = [simulate(spec, backend=backend) for spec in specs]
    return time.perf_counter() - start, results


def _max_divergence(ref, fast):
    """Largest |delta| over the float fields; ints must match exactly."""
    worst = 0.0
    for a, b in zip(ref, fast):
        for name in _INT_FIELDS:
            if getattr(a, name) != getattr(b, name):
                return float("inf")
        for name in _FLOAT_FIELDS:
            worst = max(worst, abs(getattr(a, name) - getattr(b, name)))
        da = dataclasses.asdict(a.activity)
        if da != dataclasses.asdict(b.activity):
            return float("inf")
    return worst


def _faulted_specs():
    """The fig-9 grid with a mid-measure transient router fault per point.

    The victim is the highest-numbered active non-master node, so every
    spec reconfigures to a degraded convex region and back -- the workload
    the resilience benchmarks put on the fast path.  Regions below four
    routers are skipped (too little region left to degrade meaningfully)
    and duplicate (profile, scheme) topologies are deduplicated.
    """
    _, specs = paired_specs()
    out, seen = [], set()
    for spec in specs:
        nodes = sorted(spec.topology.active_nodes)
        if len(nodes) < 4:
            continue
        victim = next(n for n in reversed(nodes) if n != spec.topology.master)
        faulted = dataclasses.replace(spec, faults=FaultSchedule(
            (FaultEvent(cycle=700, node=victim, duration=400),)))
        key = faulted.cache_key()
        if key not in seen:
            seen.add(key)
            out.append(faulted)
    return out


def measure():
    labels, specs = paired_specs()
    faulted = _faulted_specs()
    # warm both code paths (native kernel compilation, routing tables)
    simulate(specs[0], backend="reference")
    simulate(specs[0], backend="vectorized")
    simulate(faulted[0], backend="auto")
    ref_s, ref = _timed_pass(specs, "reference")
    fast_s, fast = _timed_pass(specs, "vectorized")
    faulted_ref_s, faulted_ref = _timed_pass(faulted, "reference")
    faulted_auto_s, faulted_auto = _timed_pass(faulted, "auto")
    from repro.noc.backends import native

    payload = {
        "spec_count": len(specs),
        "reference_s": ref_s,
        "vectorized_s": fast_s,
        "speedup": ref_s / fast_s,
        "max_field_delta": _max_divergence(ref, fast),
        "faulted_spec_count": len(faulted),
        "faulted_reference_s": faulted_ref_s,
        "faulted_auto_s": faulted_auto_s,
        "faulted_speedup": faulted_ref_s / faulted_auto_s,
        "faulted_max_field_delta": _max_divergence(faulted_ref, faulted_auto),
        "faulted_reconfigurations": sum(r.reconfigurations for r in faulted_auto),
        "native_kernel": native.available(),
        "min_speedup_gate": MIN_SPEEDUP,
        "max_delta_gate": MAX_DELTA,
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return payload


def test_extension_backend_speedup_and_equivalence(benchmark):
    payload = once(benchmark, measure)
    body = format_table(
        ["pass", "wall (s)", "specs"],
        [
            ["reference", payload["reference_s"], payload["spec_count"]],
            ["vectorized", payload["vectorized_s"], payload["spec_count"]],
            ["reference (faulted)", payload["faulted_reference_s"],
             payload["faulted_spec_count"]],
            ["auto (faulted)", payload["faulted_auto_s"],
             payload["faulted_spec_count"]],
        ],
        float_format="{:.3f}",
    )
    kernel = "native C kernel" if payload["native_kernel"] else "pure-Python fallback"
    body += (f"\nspeedup: {payload['speedup']:.2f}x ({kernel});"
             f" max field delta: {payload['max_field_delta']:.2e}"
             f"\nfaulted grid via backend='auto': "
             f"{payload['faulted_speedup']:.2f}x across "
             f"{payload['faulted_reconfigurations']} reconfigurations;"
             f" max field delta: {payload['faulted_max_field_delta']:.2e}")
    report("Extension: simulation-backend speedup gate", body)
    print(f"    machine-readable copy: {OUTPUT}")

    # the contract docs/execution.md quotes: a fast path that is not fast
    # is dead weight, and one that drifts from the reference is a bug
    assert payload["speedup"] >= MIN_SPEEDUP
    assert payload["max_field_delta"] <= MAX_DELTA
    # the capability-parity contract: the faulted grid rides the fast
    # path end to end, at the same exactness and a comparable speedup
    assert payload["faulted_speedup"] >= MIN_SPEEDUP
    assert payload["faulted_max_field_delta"] <= MAX_DELTA
    assert payload["faulted_reconfigurations"] >= 2 * payload["faulted_spec_count"]
