"""Extension: dim-silicon sprinting (DVFS x sprint-level planning).

The paper's intro frames dark silicon as "dark or dim"; its evaluation
sprints only at (1 V, 2 GHz).  This extension sweeps a chip power budget
and compares the paper's nominal-only fine-grained sprinting against a
planner that may also *dim* (more cores at a lower V/f corner)."""

from repro.cmp.workloads import get_profile
from repro.power.dvfs import DvfsPlanner
from repro.util.tables import format_table

from benchmarks.common import report

BUDGETS_W = (25.0, 30.0, 40.0, 60.0, 100.0, 180.0)


def sweep(benchmark: str):
    planner = DvfsPlanner()
    profile = get_profile(benchmark)
    rows = []
    for budget in BUDGETS_W:
        dim = planner.best_configuration(profile, budget)
        nominal = planner.nominal_only_best(profile, budget)
        rows.append((budget, nominal, dim))
    return rows


def _render(rows):
    def cell(config):
        if config is None:
            return "infeasible"
        tag = config.point.name
        return f"{config.level}c @ {tag}: {config.speedup:.2f}x"

    return format_table(
        ["budget (W)", "nominal-only (paper)", "with dim sprinting"],
        [[budget, cell(nominal), cell(dim)] for budget, nominal, dim in rows],
        float_format="{:.0f}",
    )


def test_extension_dim_sprinting_scalable(benchmark):
    rows = benchmark(sweep, "blackscholes")
    report("Extension: dim sprinting, scalable workload (blackscholes)", _render(rows))
    # under tight budgets the dim planner strictly beats nominal-only...
    tight = [r for r in rows if r[0] <= 40.0 and r[1] is not None and r[2] is not None]
    assert any(dim.speedup > nominal.speedup * 1.05 for _, nominal, dim in tight)
    # ...and with a generous budget both settle on the nominal optimum
    _, nominal, dim = rows[-1]
    assert dim.point.name == "nominal"
    assert dim.level == nominal.level == 16


def test_extension_dim_sprinting_serial(benchmark):
    rows = benchmark(sweep, "freqmine")
    report("Extension: dim sprinting, serial workload (freqmine)", _render(rows))
    for budget, nominal, dim in rows:
        if nominal is not None:
            # whenever nominal single-core fits the budget, dimming a
            # serial workload only loses frequency: the planner stays put
            assert dim.point.name == "nominal"
            assert dim.level == 1
        elif dim is not None:
            # below the nominal single-core power, dimming is the only way
            # to fit at all -- the dim planner still finds a configuration
            assert dim.is_dim
            assert dim.level == 1
