"""Extension: sensitivity of the headline network results to the router
microarchitecture.

The paper evaluates one router configuration (Table 1).  This bench sweeps
VC count, buffer depth and packet length and checks that Figure 11's
4-core latency/power advantages survive every variation -- i.e. the
conclusions are properties of NoC-sprinting, not of one design point."""

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator
from repro.power.activity import network_power
from repro.util.rng import stream
from repro.util.tables import format_table

from benchmarks.common import once, report

RATE = 0.2
LEVEL = 4

VARIATIONS = (
    ("Table 1 (4 VC x 4, 5 flits)", NoCConfig()),
    ("2 VCs", NoCConfig(vcs_per_port=2)),
    ("8 VCs", NoCConfig(vcs_per_port=8)),
    ("depth 2", NoCConfig(buffers_per_vc=2)),
    ("depth 8", NoCConfig(buffers_per_vc=8)),
    ("1-flit packets", NoCConfig(packet_length_flits=1)),
    ("9-flit packets", NoCConfig(packet_length_flits=9)),
)


def run_pair(cfg: NoCConfig):
    region = SprintTopology.for_level(4, 4, LEVEL)
    traffic = TrafficGenerator(list(region.active_nodes), RATE,
                               cfg.packet_length_flits, seed=3)
    noc = run_simulation(region, traffic, cfg, routing="cdor",
                         warmup_cycles=300, measure_cycles=900)
    noc_power = network_power(noc, region, cfg)

    full = SprintTopology.for_level(4, 4, 16)
    endpoints = stream(2, "sens-mapping").sample(range(16), LEVEL)
    traffic2 = TrafficGenerator(endpoints, RATE, cfg.packet_length_flits, seed=4)
    scattered = run_simulation(full, traffic2, cfg, routing="xy",
                               warmup_cycles=300, measure_cycles=900)
    full_power = network_power(scattered, full, cfg)
    return (
        noc.avg_latency, scattered.avg_latency,
        noc_power.total, full_power.total,
    )


def sweep():
    rows = []
    for name, cfg in VARIATIONS:
        noc_lat, full_lat, noc_p, full_p = run_pair(cfg)
        rows.append((name, noc_lat, full_lat,
                     100 * (1 - noc_lat / full_lat),
                     100 * (1 - noc_p / full_p)))
    return rows


def test_extension_sensitivity(benchmark):
    rows = once(benchmark, sweep)
    body = format_table(
        ["router variation", "noc lat", "full lat", "lat saving %", "pow saving %"],
        [list(r) for r in rows],
        float_format="{:.1f}",
    )
    report("Extension: microarchitecture sensitivity (4-core sprint, 0.2 load)", body)

    # the sign and rough magnitude of the advantage survive every variation
    for name, noc_lat, full_lat, lat_saving, pow_saving in rows:
        assert lat_saving > 10.0, name
        assert pow_saving > 45.0, name
