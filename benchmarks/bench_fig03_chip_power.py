"""Figure 3: chip power breakdown during nominal operation (one active
core) for 4/8/16/32-core sprinting-based CMPs."""

import pytest

from repro.power.chip_power import ChipPowerModel
from repro.util.tables import format_table

from benchmarks.common import report

PAPER_NOC_SHARES = {4: 18, 8: 26, 16: 35, 32: 42}


def sweep():
    return {n: ChipPowerModel(n).nominal_breakdown() for n in (4, 8, 16, 32)}


def test_fig03_chip_power_breakdown(benchmark):
    reports = benchmark(sweep)
    rows = []
    for n, r in reports.items():
        rows.append(
            [
                f"{n}-core",
                r.total,
                100 * r.share("cores"),
                100 * r.share("l2"),
                100 * r.share("noc"),
                100 * r.share("memory_controllers"),
                100 * r.share("others"),
            ]
        )
    report(
        "Figure 3: nominal-mode chip power breakdown (single active core)",
        format_table(
            ["chip", "total (W)", "core %", "L2 %", "NoC %", "MC %", "others %"],
            rows,
            float_format="{:.1f}",
        ),
    )

    for n, paper in PAPER_NOC_SHARES.items():
        assert 100 * reports[n].share("noc") == pytest.approx(paper, abs=3.0)
    # the NoC share grows and the core share shrinks as dark silicon grows
    noc_shares = [reports[n].share("noc") for n in (4, 8, 16, 32)]
    core_shares = [reports[n].share("cores") for n in (4, 8, 16, 32)]
    assert noc_shares == sorted(noc_shares)
    assert core_shares == sorted(core_shares, reverse=True)
