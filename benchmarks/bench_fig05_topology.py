"""Figure 5: topology, routing and floorplan for fine-grained sprinting --
the 8-core convex region, a CDOR path with its NE turn, and the physical
allocation of the thermal-aware floorplan."""

from repro.core.cdor import CdorRouter
from repro.core.deadlock import check_deadlock_freedom
from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.util.directions import Direction

from benchmarks.common import report


def build_figure():
    topo8 = SprintTopology.for_level(4, 4, 8)
    router = CdorRouter(topo8)
    path = router.walk(9, 2)
    turns = router.turns(9, 2)
    floorplan = thermal_aware_floorplan(4, 4)
    deadlock = check_deadlock_freedom(router)
    return topo8, path, turns, floorplan, deadlock


def render_region(topo):
    lines = []
    for y in range(topo.height):
        row = []
        for x in range(topo.width):
            node = y * topo.width + x
            row.append(f"[{node:2d}]" if topo.is_active(node) else f" {node:2d} ")
        lines.append(" ".join(row))
    return "\n".join(lines)


def test_fig05_topology_routing_floorplan(benchmark):
    topo8, path, turns, floorplan, deadlock = benchmark(build_figure)
    body = (
        "8-core sprint region (Algorithm 1, [..] = active):\n"
        + render_region(topo8)
        + f"\n\nCDOR route 9 -> 2: {' -> '.join(map(str, path))}"
        + f"\nturns: {[(n, i.value, o.value) for n, i, o in turns]}"
        + f"\ndeadlock-free: {deadlock.acyclic} "
        + f"({deadlock.channel_count} channels, {deadlock.dependency_count} deps)"
        + "\n\nthermal-aware floorplan Pos(logical)=physical slot:\n"
        + str(list(floorplan.position))
    )
    report("Figure 5: topology, routing, floorplan", body)

    # the paper's 8-core region and NE-turn example
    assert set(topo8.active_nodes) == {0, 1, 2, 4, 5, 6, 8, 9}
    assert path == [9, 5, 6, 2]
    assert (5, Direction.NORTH, Direction.EAST) in turns
    assert deadlock.acyclic
    # 4-core sprint maps to the four die corners
    assert {floorplan.position[n] for n in (0, 1, 4, 5)} == {0, 3, 12, 15}
