"""Ablation: Euclidean vs Hamming activation ordering in Algorithm 1.

The paper argues Euclidean ordering yields better *inter-node* proximity:
at 4-core sprinting, Hamming may pick node 2 (three hops from node 5's
corner) where Euclidean picks the diagonal node 5, closing the 2x2 square.
"""

from repro.core.topological import SprintTopology, sprint_region
from repro.util.geometry import average_pairwise_manhattan
from repro.util.tables import format_table

from benchmarks.common import report


def compare_orderings():
    rows = []
    for level in range(2, 17):
        rows.append(
            (
                level,
                average_pairwise_manhattan(
                    SprintTopology.for_level(4, 4, level, metric="euclidean").coords
                ),
                average_pairwise_manhattan(
                    SprintTopology.for_level(4, 4, level, metric="hamming").coords
                ),
            )
        )
    return rows


def test_ablation_euclidean_vs_hamming(benchmark):
    rows = benchmark(compare_orderings)
    table = [[lvl, eu, ham, ham - eu] for lvl, eu, ham in rows]
    body = format_table(
        ["level", "Euclidean avg hops", "Hamming avg hops", "delta"], table
    )
    report("Ablation: Algorithm 1 distance metric", body)

    # the paper's 4-core example: Euclidean strictly tighter
    four = dict((lvl, (eu, ham)) for lvl, eu, ham in rows)[4]
    assert four[0] < four[1]
    assert sprint_region(4, 4, 4, metric="euclidean") == [0, 1, 4, 5]
    assert 2 in sprint_region(4, 4, 4, metric="hamming")

    # Euclidean never has worse average inter-node distance
    assert all(eu <= ham + 1e-9 for _, eu, ham in rows)
    # and is strictly better somewhere
    assert any(eu < ham - 1e-9 for _, eu, ham in rows)
