"""Extension: adaptive turn-model routing vs XY on the full-sprint mesh.

CDOR owns the irregular regions; on the full mesh the classic partially-
adaptive turn models (west-first, negative-first) are the natural baseline.
Under benign uniform traffic all three match; under an adversarial
permutation near saturation the adaptive routers spread the load.

Each point is a declarative :class:`SimulationSpec` run through
``backend="auto"``: adaptive-routing parity in the fast path (C kernel
included) makes this sweep cheap, and the credit-based selection is
bit-identical to the reference engine's."""

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import simulate
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG = NoCConfig()
FULL = SprintTopology.for_level(4, 4, 16)
ALGORITHMS = ("xy", "west_first", "negative_first")


def sweep(pattern, rates):
    rows = []
    for rate in rates:
        latencies = []
        for algorithm in ALGORITHMS:
            spec = SimulationSpec(
                topology=FULL,
                traffic=TrafficSpec(tuple(FULL.active_nodes), rate,
                                    CFG.packet_length_flits, pattern, seed=4),
                config=CFG,
                routing=algorithm,
                warmup_cycles=300,
                measure_cycles=1500,
                drain_cycles=6000,
                backend="auto",
            )
            latencies.append(simulate(spec).avg_latency)
        rows.append((rate, *latencies))
    return rows


def test_extension_adaptive_uniform(benchmark):
    rows = once(benchmark, sweep, "uniform", (0.1, 0.3, 0.5))
    body = format_table(
        ["inj rate", "XY", "west-first", "negative-first"],
        [list(r) for r in rows],
        float_format="{:.1f}",
    )
    report("Extension: routing algorithms, uniform traffic (full mesh)", body)
    # under light/moderate uniform traffic the three agree (XY is optimal
    # there); at high load negative-first's skewed turn set loses ground,
    # the textbook behaviour of that turn model
    for rate, xy, wf, nf in rows:
        if rate <= 0.3:
            assert abs(wf - xy) / xy < 0.15
            assert abs(nf - xy) / xy < 0.15
        else:
            assert wf < 1.3 * xy
            assert nf < 1.5 * xy


def test_extension_adaptive_transpose(benchmark):
    rows = once(benchmark, sweep, "transpose", (0.2, 0.4, 0.6))
    body = format_table(
        ["inj rate", "XY", "west-first", "negative-first"],
        [list(r) for r in rows],
        float_format="{:.1f}",
    )
    report("Extension: routing algorithms, transpose traffic (full mesh)", body)
    # near saturation, adaptivity must not lose to XY on the adversarial
    # pattern (and typically wins)
    heavy = rows[-1]
    assert min(heavy[2], heavy[3]) <= heavy[1] * 1.05
