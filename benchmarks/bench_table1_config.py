"""Table 1: system and interconnect configuration."""

from repro.config import default_config, table1_rows
from repro.util.tables import format_table

from benchmarks.common import report


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    report(
        "Table 1: System and Interconnect configuration",
        format_table(["parameter", "value", "parameter", "value"], rows),
    )
    cfg = default_config()
    assert cfg.core_count == 16
    assert cfg.noc.node_count == 16
    assert len(rows) == 6
