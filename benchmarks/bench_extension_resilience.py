"""Extension: resilience of a sprinting NoC under injected faults.

The fault-injection layer (docs/robustness.md) lets the simulator take
router/link failures mid-run and reconfigure to a smaller convex region
with drop-and-retransmit.  This bench sweeps fault severity over a
level-8 sprint region and reports the cost of surviving: reconfiguration
counts, packets dropped/retransmitted, the floor the region degrades to,
and the latency penalty versus the fault-free run -- graceful
degradation rather than a hung or deadlocked network.

Every point runs through ``backend="auto"``: fault parity in the fast
path means the resilience sweep no longer pays for the reference engine.
The table is mirrored to ``BENCH_resilience.json`` for CI to archive.
"""

import dataclasses
import json
import time

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.spec import FaultEvent, FaultSchedule, SimulationSpec, TrafficSpec
from repro.util.tables import format_table

from benchmarks.common import once, report, shared_cache, sweep_workers

CFG = NoCConfig()
LEVEL = 8
RATE = 0.15
OUTPUT = "BENCH_resilience.json"

SCENARIOS = (
    ("fault-free", FaultSchedule()),
    ("transient router", FaultSchedule((
        FaultEvent(cycle=700, node=5, duration=400),
    ))),
    ("permanent router", FaultSchedule((
        FaultEvent(cycle=700, node=5),
    ))),
    ("permanent link", FaultSchedule((
        FaultEvent(cycle=700, kind="link", link=(1, 5)),
    ))),
    ("two routers", FaultSchedule((
        FaultEvent(cycle=700, node=5),
        FaultEvent(cycle=1100, node=9),
    ))),
)


def _spec(faults: FaultSchedule) -> SimulationSpec:
    topo = SprintTopology.for_level(CFG.mesh_width, CFG.mesh_height, LEVEL)
    return SimulationSpec(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), RATE,
                            CFG.packet_length_flits, "uniform", seed=0),
        config=CFG,
        routing="cdor",
        warmup_cycles=400,
        measure_cycles=1200,
        drain_cycles=6000,
        faults=faults,
        backend="auto",  # fault parity: the sweep rides the fast path
    )


def sweep():
    from repro.exec import SweepRunner

    runner = SweepRunner(workers=sweep_workers(), cache=shared_cache())
    start = time.perf_counter()
    rep = runner.run([_spec(schedule) for _, schedule in SCENARIOS])
    wall_s = time.perf_counter() - start
    rows = [(name, result)
            for (name, _), result in zip(SCENARIOS, rep.results)]
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump({
            "level": LEVEL,
            "injection_rate": RATE,
            "backend": "auto",
            "wall_s": wall_s,
            "scenarios": {name: dataclasses.asdict(result)
                          for name, result in rows},
        }, handle, indent=1, sort_keys=True, default=str)
    return rows


def _render(rows):
    return format_table(
        ["scenario", "avg lat", "reconf", "dropped", "retx", "min level",
         "saturated"],
        [[name, r.avg_latency, r.reconfigurations, r.packets_dropped,
          r.packets_retransmitted, r.min_region_level,
          "yes" if r.saturated else ""]
         for name, r in rows],
        float_format="{:.2f}",
    )


def test_extension_fault_resilience(benchmark):
    rows = once(benchmark, sweep)
    report("Extension: NoC resilience under injected faults", _render(rows))
    results = dict(rows)
    baseline = results["fault-free"]
    assert not baseline.degraded and baseline.packets_dropped == 0

    # every faulty scenario reconfigures, keeps draining, and degrades
    # the region floor instead of deadlocking or saturating
    for name, result in rows:
        if name == "fault-free":
            continue
        assert result.degraded, name
        assert not result.saturated, name
        assert result.min_region_level < LEVEL, name
        assert result.packets_ejected <= result.packets_measured, name

    # a transient fault reconfigures twice (in and out) and restores the
    # planned level by the end of the run
    assert results["transient router"].reconfigurations == 2
    # a permanent fault pays: packets are lost at the boundary and the
    # survivors' retransmissions show up as latency, not silent loss
    permanent = results["permanent router"]
    assert permanent.packets_dropped + permanent.packets_retransmitted > 0
    assert permanent.avg_latency >= baseline.avg_latency * 0.9
    # two faults degrade at least as far as one
    assert (results["two routers"].min_region_level
            <= permanent.min_region_level)
