"""Figure 11: synthetic uniform-random traffic, 4-core and 8-core sprinting
on a 16-core system.

Paper observations reproduced here:
(1) NoC-sprinting cuts pre-saturation flit latency (45.1 % at 4-core,
    16.1 % at 8-core -- the benefit shrinks at higher levels);
(2) it cuts network power (62.1 % / 25.9 %);
(3) it saturates earlier, but PARSEC loads (< 0.3) never get there.
"""

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.power.activity import network_power
from repro.util.charts import line_plot
from repro.util.rng import stream
from repro.util.tables import format_table

from benchmarks.common import once, report, run_specs

CFG = NoCConfig()
FULL = SprintTopology.for_level(4, 4, 16)
RATES = (0.05, 0.15, 0.25, 0.35, 0.45)
HIGH_RATES = (0.7, 0.9)
MAPPING_SAMPLES = 4  # paper averages over ten random mappings; 4 keeps CI fast
WARMUP, MEASURE, DRAIN = (300, 1000, 4000)


def noc_spec(level, rate):
    topo = SprintTopology.for_level(4, 4, level)
    return SimulationSpec(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=7),
        config=CFG, routing="cdor",
        warmup_cycles=WARMUP, measure_cycles=MEASURE, drain_cycles=DRAIN,
    )


def full_specs(level, rate):
    """One spec per random active-core mapping on the fully-powered mesh."""
    specs = []
    for sample in range(MAPPING_SAMPLES):
        endpoints = stream(sample, "fig11-mapping").sample(range(16), level)
        specs.append(SimulationSpec(
            topology=FULL,
            traffic=TrafficSpec(tuple(endpoints), rate,
                                CFG.packet_length_flits, "uniform",
                                seed=7 + sample),
            config=CFG, routing="xy",
            warmup_cycles=WARMUP, measure_cycles=MEASURE, drain_cycles=DRAIN,
        ))
    return specs


def _full_aggregate(results):
    n = len(results)
    latency = sum(r.avg_latency for r in results) / n
    power = sum(network_power(r, FULL, CFG).total for r in results) / n
    return latency, power, sum(r.saturated for r in results)


def run_noc(level, rate):
    spec = noc_spec(level, rate)
    result = run_specs([spec]).results[0]
    return result, network_power(result, spec.topology, CFG)


def run_full(level, rate):
    return _full_aggregate(run_specs(full_specs(level, rate)).results)


def sweep(level):
    """The full Fig. 11 grid for one sprint level, as one sweep batch.

    Every (rate, mapping) point is an independent spec, so the whole grid
    fans out over the sweep engine in a single call; re-running the sweep
    (or probing individual points afterwards) is served from cache.
    """
    grid = []
    for rate in RATES:
        grid.append(noc_spec(level, rate))
        grid.extend(full_specs(level, rate))
    results = run_specs(grid).results
    rows = []
    stride = 1 + MAPPING_SAMPLES
    for i, rate in enumerate(RATES):
        noc_res = results[i * stride]
        full_lat, full_pow, _ = _full_aggregate(
            results[i * stride + 1:(i + 1) * stride]
        )
        noc_pow = network_power(noc_res, noc_spec(level, rate).topology, CFG)
        rows.append((rate, noc_res.avg_latency, full_lat,
                     noc_pow.total, full_pow, noc_res.saturated))
    return rows


def saturation_probe(level):
    probes = []
    for rate in HIGH_RATES:
        noc_res, _ = run_noc(level, rate)
        full_lat, _, full_sat = run_full(level, rate)
        probes.append((rate, noc_res.avg_latency, full_lat))
    return probes


def _report_level(level, rows, probes):
    table = [
        [rate, noc_lat, full_lat, 100 * (1 - noc_lat / full_lat),
         noc_p * 1e3, full_p * 1e3, 100 * (1 - noc_p / full_p)]
        for rate, noc_lat, full_lat, noc_p, full_p, _ in rows
    ]
    lat_red = sum(r[3] for r in table) / len(table)
    pow_red = sum(r[6] for r in table) / len(table)
    body = format_table(
        ["inj rate", "noc lat", "full lat", "lat red %", "noc mW", "full mW", "pow red %"],
        table,
        float_format="{:.1f}",
    )
    body += "".join(
        f"\nhigh-load probe rate={rate:.2f}: noc {noc:.1f} vs full {full:.1f} cycles"
        for rate, noc, full in probes
    )
    body += f"\npre-saturation means: latency -{lat_red:.1f} %, power -{pow_red:.1f} %\n\n"
    body += line_plot(
        {
            "NoC-sprinting": [(rate, noc_lat) for rate, noc_lat, *_ in rows],
            "full-sprinting": [(rate, full_lat) for rate, _, full_lat, *_ in rows],
        },
        width=48,
        height=10,
        title="average flit latency vs injection rate",
    )
    report(f"Figure 11: {level}-core sprinting, uniform-random traffic", body)
    return lat_red, pow_red


def test_fig11_four_core(benchmark):
    rows, probes = once(benchmark, lambda: (sweep(4), saturation_probe(4)))
    lat_red, pow_red = _report_level(4, rows, probes)
    # paper: -45.1 % latency, -62.1 % power; our zero-load pipeline gives a
    # slightly smaller latency gap but the same ordering and scale
    assert 20.0 < lat_red < 55.0
    assert 50.0 < pow_red < 85.0
    assert all(not sat for *_, sat in rows)  # pre-saturation region


def test_fig11_eight_core(benchmark):
    rows, probes = once(benchmark, lambda: (sweep(8), saturation_probe(8)))
    lat_red, pow_red = _report_level(8, rows, probes)
    # paper: -16.1 % latency, -25.9 % power
    assert 8.0 < lat_red < 30.0
    assert 25.0 < pow_red < 60.0
    # the benefit shrinks when sprinting to a higher level
    rows4, _ = (sweep(4), None)
    lat4 = sum(100 * (1 - r[1] / r[2]) for r in rows4) / len(rows4)
    assert lat4 > lat_red


def test_fig11_earlier_saturation(benchmark):
    """NoC-sprinting's region saturates before the full network: at light
    load the compact region wins, but as the load climbs its latency curve
    crosses over and blows up first (the paper's stated downside, harmless
    because PARSEC never exceeds 0.3 flits/cycle)."""
    def probe():
        points = []
        for rate in (0.05, 0.9):
            noc_res, _ = run_noc(8, rate)
            full_lat, _, _ = run_full(8, rate)
            points.append((rate, noc_res.avg_latency, full_lat))
        return points

    points = once(benchmark, probe)
    body = "\n".join(
        f"rate={rate:.2f}: NoC-sprinting {noc:.1f} vs full-sprinting {full:.1f} cycles"
        for rate, noc, full in points
    )
    report("Figure 11 (saturation crossover): 8-core sprint", body)
    (light_rate, light_noc, light_full), (heavy_rate, heavy_noc, heavy_full) = points
    assert light_noc < light_full  # compact region wins pre-saturation
    assert heavy_noc > heavy_full  # ...and hits its saturation wall first
    # the blow-up is dramatic relative to the light-load latency
    assert heavy_noc > 5 * light_noc
