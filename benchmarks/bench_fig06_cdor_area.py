"""Figure 6 / Section 3.2: CDOR routing-logic cost -- the paper's synthesis
shows < 2 % switch-area overhead over conventional DOR."""

from repro.config import NoCConfig
from repro.core.cdor_area import cdor_area_overhead, router_area
from repro.util.tables import format_table

from benchmarks.common import report


def area_comparison():
    cfg = NoCConfig()
    return cfg, router_area(cfg, "dor"), router_area(cfg, "cdor"), cdor_area_overhead(cfg)


def test_fig06_cdor_area_overhead(benchmark):
    cfg, dor, cdor, overhead = benchmark(area_comparison)
    rows = [
        ["buffers", dor.buffers, cdor.buffers],
        ["crossbar", dor.crossbar, cdor.crossbar],
        ["VC allocator", dor.vc_allocator, cdor.vc_allocator],
        ["switch allocator", dor.switch_allocator, cdor.switch_allocator],
        ["routing logic", dor.routing_logic, cdor.routing_logic],
        ["TOTAL", dor.total, cdor.total],
    ]
    body = format_table(
        ["component", "DOR (NAND2-eq)", "CDOR (NAND2-eq)"], rows, float_format="{:.0f}"
    )
    body += f"\nCDOR switch-area overhead: {100 * overhead:.3f} % (paper: < 2 %)"
    report("Figure 6: CDOR routing logic area", body)

    assert cdor.routing_logic > dor.routing_logic
    assert 0 < overhead < 0.02
