"""Section 3.4: LLC architecture vs network power gating.

The paper: gating "works perfectly" for private / centralized / NUCA LLCs;
tile-interleaved shared LLCs send accesses to dark banks, so either the
network stays fully powered (no gating benefit) or bypass paths [4] front
the dark banks.  This bench measures all three options during a 4-core
sprint."""

from repro.cmp.llc import LlcAccessStream, LlcArchitecture
from repro.config import NoCConfig
from repro.core.bypass import BYPASS_ENERGY_PER_FLIT_J, plan_bypass
from repro.core.topological import SprintTopology
from repro.noc.llc_sim import run_llc_simulation
from repro.power.activity import network_power
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG = NoCConfig()
ACCESS_RATE = 0.05
WARMUP, MEASURE = 300, 1200


def sweep():
    region = SprintTopology.for_level(4, 4, 4)
    full = SprintTopology.for_level(4, 4, 16)
    cores = list(region.active_nodes)
    rows = []

    def power_of(result, topology):
        net = network_power(result, topology, CFG).total
        bypass_w = (
            result.bypass_flits * BYPASS_ENERGY_PER_FLIT_J
            / (result.measure_cycles / 2.0e9)
        )
        return net + bypass_w

    # centralized shared LLC on the gated region (gating "works perfectly")
    central = run_llc_simulation(
        region,
        LlcAccessStream(cores, LlcArchitecture.CENTRALIZED, ACCESS_RATE, seed=1),
        CFG, "cdor", warmup_cycles=WARMUP, measure_cycles=MEASURE,
    )
    rows.append(("centralized, gated", central, power_of(central, region), 4))

    # tiled LLC with bypass paths on the gated region (the paper's choice)
    tiled_bypass = run_llc_simulation(
        region,
        LlcAccessStream(cores, LlcArchitecture.TILED, ACCESS_RATE, seed=1),
        CFG, "cdor", bypass=plan_bypass(region),
        warmup_cycles=WARMUP, measure_cycles=MEASURE,
    )
    rows.append(("tiled + bypass, gated", tiled_bypass, power_of(tiled_bypass, region), 4))

    # tiled LLC without bypass: the network cannot be gated at all
    tiled_full = run_llc_simulation(
        full,
        LlcAccessStream(cores, LlcArchitecture.TILED, ACCESS_RATE, seed=1),
        CFG, "xy", warmup_cycles=WARMUP, measure_cycles=MEASURE,
    )
    rows.append(("tiled, network fully on", tiled_full, power_of(tiled_full, full), 16))
    return rows


def test_llc_architectures(benchmark):
    rows = once(benchmark, sweep)
    table = [
        [
            name,
            routers,
            result.avg_round_trip,
            result.p95_round_trip,
            100 * result.dark_access_fraction,
            power * 1e3,
        ]
        for name, result, power, routers in rows
    ]
    report(
        "Section 3.4: LLC architecture vs gating (4-core sprint)",
        format_table(
            ["configuration", "routers on", "round-trip (cyc)", "p95",
             "dark accesses %", "net power (mW)"],
            table,
            float_format="{:.1f}",
        ),
    )

    by_name = {name: (result, power) for name, result, power, _ in rows}
    bypass_result, bypass_power = by_name["tiled + bypass, gated"]
    full_result, full_power = by_name["tiled, network fully on"]
    central_result, central_power = by_name["centralized, gated"]

    # bypass preserves the gating benefit: a fraction of the full-network power
    assert bypass_power < 0.5 * full_power
    # ...while still reaching every bank (nothing saturates, everything completes)
    assert not bypass_result.saturated
    assert bypass_result.dark_access_fraction > 0.5
    # the gated configurations burn similar power (both power 4 routers)
    assert abs(bypass_power - central_power) < 0.5 * central_power
