"""Figure 12: steady-state heat maps for dedup (optimal level 4).

Paper peaks: full-sprinting 358.3 K (centre hotspot), 4-core NoC-sprinting
347.79 K, NoC-sprinting + thermal-aware floorplanning 343.81 K."""

import numpy as np
import pytest

from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.power.chip_power import ChipPowerModel
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.grid import ThermalGrid
from repro.util.tables import render_heatmap

from benchmarks.common import once, report

PAPER = {"full": 358.3, "cluster": 347.79, "floorplanned": 343.81}


def heat_maps():
    grid = ThermalGrid(4, 4, 4)
    chip = ChipPowerModel(16)
    full_topo = SprintTopology.for_level(4, 4, 16)
    topo4 = SprintTopology.for_level(4, 4, 4)  # dedup's optimal level
    fp = thermal_aware_floorplan(4, 4)
    scenarios = {
        "full": sprint_tile_powers(full_topo, chip),
        "cluster": sprint_tile_powers(topo4, chip),
        "floorplanned": sprint_tile_powers(topo4, chip, fp),
    }
    return {
        name: grid.tile_temperatures(powers) for name, powers in scenarios.items()
    }, {name: grid.peak_temperature(powers) for name, powers in scenarios.items()}


def test_fig12_heat_maps(benchmark):
    maps, peaks = once(benchmark, heat_maps)
    body = ""
    for name in ("full", "cluster", "floorplanned"):
        body += (
            f"\n(12{'abc'[list(PAPER).index(name)]}) {name}: "
            f"peak {peaks[name]:.2f} K (paper {PAPER[name]} K)\n"
            + render_heatmap(maps[name])
            + "\n"
        )
    report("Figure 12: heat maps, dedup at sprint level 4", body)

    for name, paper_peak in PAPER.items():
        assert peaks[name] == pytest.approx(paper_peak, abs=1.5), name
    assert peaks["full"] > peaks["cluster"] > peaks["floorplanned"]

    # full-sprint hotspot sits in the die centre (Figure 12a)
    full_map = maps["full"]
    peak_tile = np.unravel_index(full_map.argmax(), full_map.shape)
    assert peak_tile[0] in (1, 2) and peak_tile[1] in (1, 2)

    # clustered sprint heats the master corner (Figure 12b)
    cluster_map = maps["cluster"]
    assert cluster_map[0, 0] == cluster_map.max()
