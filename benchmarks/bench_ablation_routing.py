"""Ablation: CDOR in-region routing vs plain XY over the full mesh.

Two costs of ignoring the sprint region: (a) XY forwards active-to-active
packets through dark routers, forcing wakeups the static gating scheme
would otherwise never pay; (b) keeping forwarding routers powered burns
leakage.  CDOR eliminates both with <2 % switch area."""

from repro.config import NoCConfig
from repro.core.gating_policy import xy_wakeups_through_dark
from repro.core.topological import SprintTopology
from repro.noc.power_gating import TimeoutGatingPolicy
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator
from repro.util.tables import format_table

from benchmarks.common import once, report

CFG = NoCConfig()


def offending_pairs():
    rows = []
    for level in range(2, 16):
        topo = SprintTopology.for_level(4, 4, level)
        pairs = level * (level - 1)
        offending = xy_wakeups_through_dark(topo)
        rows.append((level, pairs, offending, 100 * offending / pairs))
    return rows


def wakeup_latency_cost(level=8, rate=0.05):
    """Run the same active-core traffic two ways: CDOR on the static region
    vs XY on the full mesh with timeout gating (the conventional scheme)."""
    region = SprintTopology.for_level(4, 4, level)
    traffic = TrafficGenerator(list(region.active_nodes), rate,
                               CFG.packet_length_flits, seed=3)
    cdor = run_simulation(region, traffic, CFG, routing="cdor",
                          warmup_cycles=300, measure_cycles=1500)

    full = SprintTopology.for_level(4, 4, 16)
    traffic2 = TrafficGenerator(list(region.active_nodes), rate,
                                CFG.packet_length_flits, seed=3)
    policy = TimeoutGatingPolicy(idle_timeout=32)
    xy = run_simulation(full, traffic2, CFG, routing="xy",
                        warmup_cycles=300, measure_cycles=1500,
                        gating_policy=policy)
    return cdor, xy, policy


def test_ablation_xy_wakeups(benchmark):
    rows = benchmark(offending_pairs)
    body = format_table(
        ["level", "active pairs", "XY pairs through dark", "share %"],
        [list(r) for r in rows],
        float_format="{:.1f}",
    )
    report("Ablation: XY-through-dark wakeup pressure vs CDOR (zero)", body)
    assert any(offending > 0 for _, _, offending, _ in rows)
    # CDOR has zero by construction (verified in tests); XY worst case is material
    assert max(share for *_, share in rows) > 10.0


def test_ablation_wakeup_latency(benchmark):
    cdor, xy, policy = once(benchmark, wakeup_latency_cost)
    body = (
        f"CDOR on static region: {cdor.avg_latency:.1f} cycles, 0 wakeups\n"
        f"XY + timeout gating:   {xy.avg_latency:.1f} cycles, "
        f"{policy.stats.wake_events} wakeups, {policy.stats.gate_events} gate-offs"
    )
    report("Ablation: routing scheme under sparse sprint traffic", body)
    assert cdor.avg_latency < xy.avg_latency
    assert policy.stats.wake_events > 0
